"""The three-tier query planner: exact / pruned / approx.

Every exact structure in this library admits the same pruning argument:
an object ``P_i`` cannot be the (probable / expected / nonzero) nearest
neighbor of ``q`` when ``dmin_i(q) > min_j dmax_j(q)``.  The planner
evaluates that test **vectorized over the whole query matrix** using the
precomputed envelope brackets of :class:`repro.uncertain.ModelColumns`
(``lb <= dmin``, ``dmax <= ub`` ⇒ pruning on ``lb > min_j ub_j`` is
always safe), shrinks each query's candidate set, and dispatches only
the survivors to the existing batched evaluators.  Results are exactly
identical to the unpruned paths:

* the realized / expected winner always survives (its own ``lb`` is at
  most its ``dmax``, which bounds the cutoff);
* every pruned object is *strictly* farther than the per-query cutoff,
  so it can neither win nor tie any evaluator's minimum, and for
  Lemma 2.1 the minimum (and decisive second minimum) of the ``dmax``
  row is always attained at a candidate.

Tiered execution
----------------
The answer-producing methods take ``tier=``:

``"pruned"`` (default)
    Prune-then-evaluate, exactly identical to the unpruned answers.
``"exact"``
    Skip pruning; evaluate every object (the cross-check tier).
``"approx"``
    Point location in a lazily built
    :class:`repro.core.quant_index.QuantizedEnvelopeIndex` (pass
    ``eps=``, optionally ``rel=``): certified ε-approximate answers in
    O(log) per query, with the index's exact-fallback rows transparently
    resolved by the pruned tier.

Tiled execution
---------------
The exact and pruned tiers never materialize ``(m, n)`` floating-point
matrices.  Queries are processed in row tiles sized from
``config.EXECUTION.tile_bytes`` (so the bound pass's simultaneous
``(rows, n)`` float64 temporaries fit the configured budget — the
default keeps a tile inside a cache slice), and the tiles can be fanned
out across cores by :func:`repro.core.parallel.map_tiles`
(``parallel_backend="thread"``; results are assembled in tile order, so
parallel answers are bit-identical to serial — the ``"process"``
backend serves picklable workloads through ``map_tiles`` directly, and
the planner rejects it since its tile closures hold model objects).  A
single
scalar-style query is exactly one tile and allocates only ``(1, n)``
rows — no full-matrix staging, no copies.

Candidate generation
--------------------
Since PR 5 the pruned tier's default candidate generator is the
**dual-tree traversal** of :mod:`repro.core.dual_tree`
(``method="dual"``): a query-block STR tree is walked against a cached
object-envelope STR tree level by level, node pairs are pruned against
per-block running best upper bounds, and the surviving members are
refined with the flat tier's exact bounds — the emitted CSR survivor
sets equal the flat pass's survivors bit for bit, but the bound work is
proportional to the surviving frontier instead of ``m * n``.  The flat
``(rows, n)`` pass (``method="flat"`` / ``prune="flat"``) and the bulk
leaf groupings (``"kdtree"`` / ``"rtree"`` from :mod:`repro.index.bulk`)
remain as escape hatches; whatever the generator, evaluation runs over
the same tiled blocks, so answers are identical across methods.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import EXECUTION
from ..errors import QueryError
from ..geometry import kernels
from .. import resilience as _resilience
from ..index.bulk import group_bboxes, kd_leaves, str_leaves
from ..uncertain.columns import TAG_DISCRETE, ModelColumns
from . import evaluators as _evaluators
from . import parallel as _parallel
from .dual_tree import DualTreeCandidates, EnvelopeObjectTree, dual_tree_candidates
from .nonzero import nonzero_from_matrices, support_report
from .quantification import quantification_probabilities, sweep_quantification

__all__ = ["QueryPlanner"]

#: Relative slack applied to every pruning cutoff so a bound computed a
#: few ulps above its true value can never discard a genuine candidate.
_CUTOFF_SLACK = 1.0 + 1e-12

#: Query-block / object-envelope tree parameters of the dual-tree
#: candidate generator (``method="dual"``).
_DUAL_LEAF_SIZE = 16
_DUAL_FANOUT = 8

#: Peak float64 working-set bytes per (query, object) pair in a tile's
#: bound-plus-evaluate pass (lb/ub/center-distance temporaries in the
#: kernels, plus the evaluator's value matrix): 8 simultaneous arrays.
_BYTES_PER_PAIR = 64

#: Per-pair bytes when the dual generator feeds the tiles: the bound
#: temporaries never materialize per tile (the traversal is
#: output-sensitive and budgets its own chunks), so a tile only holds
#: the evaluator's value matrix, the densified candidate mask, and the
#: evaluators' row-sized scratch — larger tiles, same memory budget,
#: less per-tile dispatch overhead.
_BYTES_PER_PAIR_DUAL = 24

_TIERS = ("exact", "pruned", "approx")


class QueryPlanner:
    """Three-tier (exact / pruned / approx) planner over a fixed set.

    Parameters
    ----------
    points:
        The uncertain points (any mix of models).
    columns:
        Optional precomputed :class:`ModelColumns` for ``points`` (built
        once here when omitted).
    method:
        ``"dual"`` (the ``"auto"`` default) — dual-tree candidate
        generation (:mod:`repro.core.dual_tree`): output-sensitive,
        bit-identical survivors to the flat pass; ``"flat"`` — one
        vectorized pass over the tile's ``(rows, n)`` bound matrices;
        ``"kdtree"`` / ``"rtree"`` — group objects into bulk leaves
        (argpartition kd splits / STR tiles) and prune whole groups
        first.
    prune:
        Convenience escape hatch: ``prune="dual"`` / ``prune="flat"``
        overrides ``method`` (the two spellings name the same
        strategies).
    leaf_size:
        Group capacity for the kd/rtree methods (the dual trees use
        their own packing parameters).
    object_tree:
        Optional prebuilt
        :class:`~repro.core.dual_tree.EnvelopeObjectTree` over the same
        columns, adopted instead of building lazily — the
        :class:`repro.Engine` registry shares one per generation across
        batches and criteria.
    tile_bytes / parallel_backend / parallel_workers:
        Per-planner overrides of :data:`repro.config.EXECUTION` (``None``
        reads the live config at call time).
    approx_cache:
        Optional mutable mapping holding the approx tier's
        :class:`~repro.core.quant_index.QuantizedEnvelopeIndex` per
        ``(eps, rel, criterion)`` key.  The :class:`repro.Engine`
        registry passes an instrumented, generation-tagged view here so
        quantized envelopes built through the planner are owned (and
        counted) by the session; a plain private dict is used when
        omitted.
    """

    def __init__(
        self,
        points: Sequence,
        columns: Optional[ModelColumns] = None,
        method: str = "auto",
        prune: Optional[str] = None,
        leaf_size: int = 32,
        tile_bytes: Optional[int] = None,
        parallel_backend: Optional[str] = None,
        parallel_workers: Optional[int] = None,
        approx_cache: Optional[Dict[Tuple[float, float, str], object]] = None,
        object_tree: Optional[EnvelopeObjectTree] = None,
        object_tree_supplier=None,
        eval_cache_supplier=None,
        evaluator: Optional[str] = None,
    ):
        self.points = list(points)
        if not self.points:
            raise QueryError("QueryPlanner requires at least one point")
        self.columns = columns if columns is not None else ModelColumns(self.points)
        if self.columns.n != len(self.points):
            raise QueryError("columns were built over a different point set")
        if prune is not None:
            if prune not in ("dual", "flat"):
                raise QueryError(
                    f"unknown prune strategy {prune!r}; expected 'dual' or 'flat'"
                )
            method = prune
        if method not in ("auto", "dual", "flat", "kdtree", "rtree"):
            raise QueryError(f"unknown planner method {method!r}")
        if method == "auto":
            method = "dual"
        self.method = method
        self.leaf_size = int(leaf_size)
        self.tile_bytes = tile_bytes
        self.parallel_backend = parallel_backend
        self.parallel_workers = parallel_workers
        self._leaves: Optional[List[np.ndarray]] = None
        self._leaf_bboxes: Optional[np.ndarray] = None
        self._approx_cache = approx_cache if approx_cache is not None else {}
        if object_tree is not None and object_tree.n != self.columns.n:
            raise QueryError("object tree was built over a different point set")
        self._object_tree = object_tree
        #: Optional hook called as ``supplier(build)`` on the first lazy
        #: object-tree build — the Engine registry passes one so the
        #: tree is owned (and counted) by the session, like the approx
        #: cache view.
        self._object_tree_supplier = object_tree_supplier
        if evaluator is not None and evaluator not in ("grouped", "object"):
            raise QueryError(
                f"unknown evaluator {evaluator!r}; expected 'grouped' or 'object'"
            )
        #: Per-planner override of ``config.EXECUTION.evaluator``
        #: (``None`` reads the live config at call time).  ``"grouped"``
        #: routes survivor evaluation through the tag-grouped pair
        #: kernels of :mod:`repro.core.evaluators`; ``"object"`` keeps
        #: the historical one-batched-call-per-object dispatch (the
        #: bit-identity reference).
        self.evaluator = evaluator
        #: Optional registry hook for the lazily built
        #: :class:`~repro.core.evaluators.EvalCache`, mirroring
        #: ``object_tree_supplier``.
        self._eval_cache = None
        self._eval_cache_supplier = eval_cache_supplier
        #: Cumulative dual-tree telemetry across this planner's prune
        #: passes (surfaced by :meth:`repro.Engine.stats`).
        self.dual_totals: Dict[str, float] = {
            "traversals": 0.0,
            "node_pairs_visited": 0.0,
            "node_pairs_pruned": 0.0,
            "point_node_pairs": 0.0,
            "refined_pairs": 0.0,
            "survivors": 0.0,
        }
        self.last_dual_stats: Optional[Dict[str, float]] = None
        #: Cumulative evaluation-phase telemetry: grouped kernel passes,
        #: pairs they evaluated, and the prune / evaluate wall-time
        #: split (prune seconds cover the dual traversal passes).
        self.eval_totals: Dict[str, float] = {
            "grouped_calls": 0.0,
            "pairs": 0.0,
            "prune_seconds": 0.0,
            "eval_seconds": 0.0,
        }
        self.last_eval_stats: Optional[Dict[str, float]] = None
        self._last_prune_seconds = 0.0
        #: After an approx-tier ``expected_nn_many`` under
        #: ``EXECUTION.dtype="float32"``: per-query certified float32
        #: error bounds for the fallback rows (``None`` when the
        #: fallback ran in float64 and is exact).
        self.last_fallback_bounds: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.points)

    # -- tiled execution -----------------------------------------------------
    def _tile_rows(self, tier: str = "pruned") -> int:
        tb = self.tile_bytes if self.tile_bytes is not None else EXECUTION.tile_bytes
        # The reduced estimate only applies where the dual generator
        # actually replaces the per-tile bound pass (the pruned tier);
        # exact-tier tiles still stage their own full extremal matrices.
        per_pair = (
            _BYTES_PER_PAIR_DUAL
            if self.method == "dual" and tier == "pruned"
            else _BYTES_PER_PAIR
        )
        rows = max(1, int(tb) // max(len(self.points) * per_pair, 1))
        # Admission control: when a memory budget is configured, the
        # tile height is clamped so one tile's working set fits it (or
        # the request is rejected when even a single row cannot).
        return _resilience.clamp_tile_rows(
            rows, len(self.points), per_pair,
            what=f"{tier}-tier bound-pass tile",
        )

    def _run_tiles(self, m: int, fn, tier: str = "pruned") -> List:
        """``fn(lo, hi)`` over cache-sized row tiles, optionally fanned
        out across workers; results in tile order."""
        backend = (
            self.parallel_backend
            if self.parallel_backend is not None
            else EXECUTION.parallel_backend
        )
        if backend == "process":
            # Planner tile functions close over the planner (model
            # objects, bound state) and are not picklable; a process
            # pool would die inside the workers with an opaque error.
            raise QueryError(
                "the planner's tile functions are not picklable; use "
                "parallel_backend='thread' (the process backend serves "
                "picklable workloads via repro.core.parallel.map_tiles)"
            )
        if self.method in ("kdtree", "rtree"):
            # Materialize the lazily built leaf grouping before tiles
            # fan out, so concurrent tile closures only read shared
            # state (a half-initialized _groups() would race).
            self._groups()
        tiles = _parallel.tile_ranges(m, self._tile_rows(tier))
        return _parallel.map_tiles(
            fn,
            tiles,
            backend=backend,
            workers=self.parallel_workers,
        )

    @staticmethod
    def _check_tier(tier: str, eps: Optional[float]) -> None:
        if tier not in _TIERS:
            raise QueryError(f"unknown planner tier {tier!r}; expected {_TIERS}")
        if tier == "approx" and eps is None:
            raise QueryError("the approx tier requires eps")

    def approx_index(self, eps: float, rel: float = 0.0, criterion: str = "expected"):
        """The lazily built (and cached)
        :class:`~repro.core.quant_index.QuantizedEnvelopeIndex` behind
        ``tier="approx"`` — one per ``(eps, rel, criterion)``."""
        from .quant_index import QuantizedEnvelopeIndex

        key = (float(eps), float(rel), criterion)
        try:
            return self._approx_cache[key]
        except KeyError:
            index = QuantizedEnvelopeIndex(
                self.points,
                eps=eps,
                rel=rel,
                criterion=criterion,
                columns=self.columns,
            )
            self._approx_cache[key] = index
            return index

    # -- candidate generation ------------------------------------------------
    def object_tree(self) -> EnvelopeObjectTree:
        """The (lazily built) object-envelope STR tree behind
        ``method="dual"`` — one per planner, shared across batches,
        criteria, and ``k`` (the tree depends only on the column
        store)."""
        if self._object_tree is None:
            def build() -> EnvelopeObjectTree:
                return EnvelopeObjectTree(
                    self.columns, _DUAL_LEAF_SIZE, _DUAL_FANOUT
                )

            self._object_tree = (
                self._object_tree_supplier(build)
                if self._object_tree_supplier is not None
                else build()
            )
        return self._object_tree

    def eval_cache(self) -> "_evaluators.EvalCache":
        """The (lazily built) :class:`~repro.core.evaluators.EvalCache`
        behind the grouped evaluator — one per planner, shared across
        batches, criteria, and query methods (it depends only on the
        point set and its column store)."""
        if self._eval_cache is None:
            def build() -> _evaluators.EvalCache:
                return _evaluators.EvalCache(self.points, self.columns)

            self._eval_cache = (
                self._eval_cache_supplier(build)
                if self._eval_cache_supplier is not None
                else build()
            )
        return self._eval_cache

    def _use_grouped(self) -> bool:
        mode = self.evaluator if self.evaluator is not None else EXECUTION.evaluator
        if mode not in ("grouped", "object"):
            raise QueryError(
                f"unknown evaluator {mode!r}; expected 'grouped' or 'object'"
            )
        return mode == "grouped"

    @staticmethod
    def _use_float32() -> bool:
        dtype = EXECUTION.dtype
        if dtype not in ("float64", "float32"):
            raise QueryError(
                f"unknown execution dtype {dtype!r}; expected 'float64' or "
                "'float32'"
            )
        return dtype == "float32"

    def _note_eval(self, pairs: int, seconds: float) -> None:
        self.eval_totals["grouped_calls"] += 1.0
        self.eval_totals["pairs"] += float(pairs)
        self.eval_totals["eval_seconds"] += float(seconds)
        self.last_eval_stats = {
            "pairs": float(pairs),
            "eval_seconds": float(seconds),
            "prune_seconds": float(self._last_prune_seconds),
        }

    def _dual_csr(self, Q: np.ndarray, k: int, criterion: str) -> DualTreeCandidates:
        """One dual-tree prune pass over the whole batch (the traversal
        is output-sensitive, so it is never row-tiled; threads fan out
        over query subtrees instead)."""
        # Admission gate: the traversal is never row-tiled, so the clamp
        # result is unused — the call rejects requests whose single-row
        # worst case (every object surviving) already exceeds the
        # configured memory budget.
        _resilience.clamp_tile_rows(
            Q.shape[0] if Q.shape[0] else 1,
            len(self.points),
            _BYTES_PER_PAIR_DUAL,
            what="dual-tree refinement working set",
        )
        backend = (
            self.parallel_backend
            if self.parallel_backend is not None
            else EXECUTION.parallel_backend
        )
        t0 = time.perf_counter()
        res = dual_tree_candidates(
            Q,
            self.columns,
            object_tree=self.object_tree(),
            k=k,
            criterion=criterion,
            leaf_size=_DUAL_LEAF_SIZE,
            fanout=_DUAL_FANOUT,
            slack=_CUTOFF_SLACK,
            backend=backend,
            workers=self.parallel_workers,
            tile_bytes=self.tile_bytes,
        )
        self._last_prune_seconds = time.perf_counter() - t0
        self.eval_totals["prune_seconds"] += self._last_prune_seconds
        self.dual_totals["traversals"] += 1.0
        for key in (
            "node_pairs_visited",
            "node_pairs_pruned",
            "point_node_pairs",
            "refined_pairs",
            "survivors",
        ):
            self.dual_totals[key] += res.stats[key]
        self.last_dual_stats = dict(res.stats)
        return res

    def _groups(self) -> Tuple[List[np.ndarray], np.ndarray]:
        if self._leaves is None:
            if self.method == "rtree":
                self._leaves = str_leaves(self.columns.bboxes, self.leaf_size)
            else:
                self._leaves = kd_leaves(self.columns.centers, self.leaf_size)
            self._leaf_bboxes = group_bboxes(self.columns.bboxes, self._leaves)
        return self._leaves, self._leaf_bboxes

    def _member_bounds(
        self, Qsub: np.ndarray, members: Optional[np.ndarray], criterion: str
    ):
        """The criterion's ``(lb, ub)`` bracket, optionally on a column
        subset (``members=None`` is the full set)."""
        if criterion == "expected":
            return self.columns.expected_bounds_many(Qsub, members=members)
        return self.columns.envelope_bounds_many(Qsub, members=members)

    def _mask_block(self, Q: np.ndarray, k: int, criterion: str) -> np.ndarray:
        """The boolean candidate mask of one query tile."""
        if self.method == "flat" or Q.shape[0] == 0:
            lb, ub = self._member_bounds(Q, None, criterion)
            cutoff = self._kth_smallest(ub, k) * _CUTOFF_SLACK
            return lb <= cutoff[:, None]
        return self._grouped_mask(Q, k, criterion)

    def candidate_mask(
        self, qs, k: int = 1, criterion: str = "support"
    ) -> np.ndarray:
        """Boolean ``(m, n)`` mask of objects surviving the prune.

        Object ``i`` survives query ``q`` when its lower bound does not
        exceed the ``k``-th smallest upper bound over the set (``k = 1``
        is the nearest-neighbor test ``dmin <= min dmax``); ``criterion``
        selects the support (``dmin``/``dmax``) or expected-distance
        bracket.  Every query keeps at least ``k`` candidates, and the
        mask is identical across every ``method``.

        The non-dual generators compute tile by tile: only the boolean
        mask spans the full batch; the float64 bound temporaries stay
        O(tile).  The dual generator is output-sensitive (O(survivors)
        work and memory) and densifies its CSR only because the mask is
        the requested product here — prefer :meth:`candidate_csr` when
        a sparse layout will do.
        """
        Q = kernels.as_query_array(qs)
        n = len(self.points)
        k = min(max(int(k), 1), n)
        if criterion not in ("support", "expected"):
            raise QueryError(f"unknown pruning criterion {criterion!r}")
        _resilience.require_bytes(
            Q.shape[0] * n,
            f"candidate mask output (m={Q.shape[0]}, n={n})",
        )
        if self.method == "dual":
            return self._dual_csr(Q, k, criterion).mask(n)
        blocks = self._run_tiles(
            Q.shape[0], lambda lo, hi: self._mask_block(Q[lo:hi], k, criterion)
        )
        return blocks[0] if len(blocks) == 1 else np.vstack(blocks)

    def candidate_csr(
        self, qs, k: int = 1, criterion: str = "support"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The prune survivors in CSR form: ``(indptr, indices)`` with
        ``indices[indptr[r]:indptr[r+1]]`` query ``r``'s surviving
        columns in ascending order.

        Native output of the dual generator (no ``(m, n)`` boolean is
        ever materialized); derived from the tiled mask for the other
        methods.  The Monte-Carlo candidate rounds consume this layout
        directly.
        """
        Q = kernels.as_query_array(qs)
        n = len(self.points)
        k = min(max(int(k), 1), n)
        if criterion not in ("support", "expected"):
            raise QueryError(f"unknown pruning criterion {criterion!r}")
        if self.method == "dual":
            res = self._dual_csr(Q, k, criterion)
            return res.indptr, res.indices
        mask = self.candidate_mask(Q, k=k, criterion=criterion)
        rows, cols = np.nonzero(mask)
        indptr = np.searchsorted(rows, np.arange(Q.shape[0] + 1)).astype(np.intp)
        return indptr, cols.astype(np.intp, copy=False)

    #: Shared with the dual-tree leaf refinement so both generators
    #: select the identical cutoff float (bit-parity of survivor sets).
    _kth_smallest = staticmethod(kernels.kth_smallest_rowwise)

    def _grouped_mask(self, Q: np.ndarray, k: int, criterion: str) -> np.ndarray:
        """Two-stage prune: leaf-level bbox bounds, then member bounds.

        Stage 1 bounds each group by its aggregate bbox (``maxdist`` to
        the group bbox dominates every member's ``dmax``, so the k-th
        smallest group bound is a valid cutoff) and drops dead groups per
        query; stage 2 tightens the cutoff with surviving members' upper
        bounds and emits the member-level mask.
        """
        m = Q.shape[0]
        n = len(self.points)
        leaves, leaf_bb = self._groups()
        leaf_lb = kernels.rect_mindist_many(Q, leaf_bb)
        leaf_ub = kernels.rect_maxdist_many(Q, leaf_bb)
        # Each group bound dominates >= |group| member dmax values, so
        # scanning groups by ascending ub until k members are covered
        # yields a valid (if loose) k-th-smallest-dmax upper bound.
        sizes = np.asarray([len(g) for g in leaves], dtype=np.intp)
        order = np.argsort(leaf_ub, axis=1, kind="stable")
        covered = np.cumsum(sizes[order], axis=1)
        need = np.argmax(covered >= k, axis=1)
        cutoff0 = leaf_ub[np.arange(m), order[np.arange(m), need]]
        alive = leaf_lb <= (cutoff0 * _CUTOFF_SLACK)[:, None]
        # Stage 2a: tighten the cutoff from surviving members' ubs.
        lb = np.full((m, n), np.inf)
        ub = np.full((m, n), np.inf)
        for g, members in enumerate(leaves):
            rows = np.flatnonzero(alive[:, g])
            if not rows.size:
                continue
            glb, gub = self._member_bounds(Q[rows], members, criterion)
            lb[rows[:, None], members[None, :]] = glb
            ub[rows[:, None], members[None, :]] = gub
        cutoff = self._kth_smallest(
            np.minimum(ub, cutoff0[:, None]), k
        ) * _CUTOFF_SLACK
        return lb <= cutoff[:, None]

    def candidate_lists(
        self, qs, k: int = 1, criterion: str = "support"
    ) -> List[np.ndarray]:
        """Per-query arrays of surviving object indices."""
        indptr, indices = self.candidate_csr(qs, k=k, criterion=criterion)
        return [
            indices[indptr[r] : indptr[r + 1]]
            for r in range(indptr.shape[0] - 1)
        ]

    # -- tiled evaluation blocks ---------------------------------------------
    def _pruned_masks(self, Q: np.ndarray, k: int, criterion: str, tier: str):
        """For the dual generator, run the (output-sensitive) prune pass
        once for the whole batch and hand the evaluation tiles densified
        row slices of its CSR; ``None`` lets tiles compute their own
        bound-pass masks (the flat / grouped generators)."""
        if tier != "pruned" or self.method != "dual":
            return None
        n = len(self.points)
        res = self._dual_csr(Q, min(max(int(k), 1), n), criterion)
        return lambda lo, hi: res.mask(n, lo, hi)

    def _expected_block(
        self,
        Q: np.ndarray,
        tier: str,
        k: int = 1,
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The tile's ``(rows, n)`` expectation matrix: survivors only
        for the pruned tier (``+inf`` elsewhere), everyone for exact."""
        n = len(self.points)
        mt = Q.shape[0]
        E = np.full((mt, n), np.inf)
        if tier == "exact":
            for i, p in enumerate(self.points):
                E[:, i] = p.expected_distance_many(Q)
            return E
        if mask is None:
            mask = self._mask_block(Q, k, "expected")
        if self._use_grouped():
            # np.nonzero walks row-major: rows ascend, columns ascend
            # within each row — exactly the CSR pair order the grouped
            # kernels scatter back from.
            rows, cols = np.nonzero(mask)
            t0 = time.perf_counter()
            vals, _ = _evaluators.expected_distance_pairs(
                self.eval_cache(), Q, rows, cols
            )
            E[rows, cols] = vals
            self._note_eval(cols.shape[0], time.perf_counter() - t0)
            return E
        for i in np.flatnonzero(mask.any(axis=0)):
            rows = np.flatnonzero(mask[:, i])
            E[rows, i] = self.points[i].expected_distance_many(Q[rows])
        return E

    def _support_matrices(
        self, Q: np.ndarray, tier: str, mask: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The tile's ``(rows, n)`` dmin/dmax matrices: survivors only
        for the pruned tier (``+inf`` elsewhere), everyone for exact."""
        n = len(self.points)
        mt = Q.shape[0]
        dmins = np.full((mt, n), np.inf)
        dmaxs = np.full((mt, n), np.inf)
        if tier == "exact":
            for i, p in enumerate(self.points):
                dmins[:, i] = p.dmin_many(Q)
                dmaxs[:, i] = p.dmax_many(Q)
        else:
            if mask is None:
                mask = self._mask_block(Q, 1, "support")
            if self._use_grouped():
                rows, cols = np.nonzero(mask)
                t0 = time.perf_counter()
                dmin, dmax = _evaluators.support_bounds_pairs(
                    self.eval_cache(), Q, rows, cols
                )
                dmins[rows, cols] = dmin
                dmaxs[rows, cols] = dmax
                self._note_eval(cols.shape[0], time.perf_counter() - t0)
            else:
                for i in np.flatnonzero(mask.any(axis=0)):
                    rows = np.flatnonzero(mask[:, i])
                    dmins[rows, i] = self.points[i].dmin_many(Q[rows])
                    dmaxs[rows, i] = self.points[i].dmax_many(Q[rows])
        return dmins, dmaxs

    def _nonzero_block(
        self, Q: np.ndarray, tier: str, mask: Optional[np.ndarray] = None
    ) -> List[FrozenSet[int]]:
        dmins, dmaxs = self._support_matrices(Q, tier, mask)
        return nonzero_from_matrices(dmins, dmaxs)

    # -- dispatch ------------------------------------------------------------
    @staticmethod
    def _check_fallback_flag(return_fallback: bool, tier: str) -> None:
        if return_fallback and tier != "approx":
            raise QueryError("return_fallback requires tier='approx'")

    def nonzero_nn_many(
        self,
        qs,
        tier: str = "pruned",
        eps: Optional[float] = None,
        rel: float = 0.0,
        return_fallback: bool = False,
    ) -> Union[
        List[FrozenSet[int]], Tuple[List[FrozenSet[int]], np.ndarray]
    ]:
        """``NN!=0(q)`` (Lemma 2.1) per query row.

        ``exact`` and ``pruned`` are identical to
        :meth:`repro.UncertainSet.nonzero_nn_many`; ``approx`` returns
        the quantized index's ε-relaxed sets (exact on settled cells)
        with its fallback rows resolved by the pruned tier —
        ``return_fallback=True`` (approx only) additionally returns the
        mask of rows that needed that exact resolution, so session
        callers can surface per-row certificates without re-running the
        point location.
        """
        self._check_tier(tier, eps)
        self._check_fallback_flag(return_fallback, tier)
        Q = kernels.as_query_array(qs)
        if tier == "approx":
            ans = self.approx_index(eps, rel, "support").nonzero_nn_many(Q)
            out = list(ans.sets)
            rows = np.flatnonzero(ans.fallback)
            if rows.size:
                resolved = self.nonzero_nn_many(Q[rows], tier="pruned")
                for r, s in zip(rows, resolved):
                    out[r] = s
            if return_fallback:
                return out, ans.fallback
            return out
        masks = self._pruned_masks(Q, 1, "support", tier)
        blocks = self._run_tiles(
            Q.shape[0],
            lambda lo, hi: self._nonzero_block(
                Q[lo:hi], tier, None if masks is None else masks(lo, hi)
            ),
            tier=tier,
        )
        return [s for block in blocks for s in block]

    def nonzero_report_many(self, qs, tier: str = "pruned") -> dict:
        """The shard-mergeable ``NN!=0`` report (see
        :func:`repro.core.nonzero.support_report`): per-row two smallest
        ``dmax`` values (with the argmin's local index) plus the local
        membership CSR with each member's ``dmin``.

        Runs the same tiled support-matrix pass as
        :meth:`nonzero_nn_many`, so the floats in the report are the
        exact values the local sets were decided by — the cluster
        supervisor merges reports from contiguous shards into the
        global sets bit-identically.
        """
        if tier not in ("exact", "pruned"):
            raise QueryError(
                f"nonzero_report_many supports exact/pruned, got {tier!r}")
        self._check_tier(tier, None)
        Q = kernels.as_query_array(qs)
        masks = self._pruned_masks(Q, 1, "support", tier)

        def run(lo: int, hi: int) -> dict:
            dmins, dmaxs = self._support_matrices(
                Q[lo:hi], tier, None if masks is None else masks(lo, hi)
            )
            return support_report(dmins, dmaxs)

        blocks = self._run_tiles(Q.shape[0], run, tier=tier)
        if len(blocks) == 1:
            return blocks[0]
        indptr = blocks[0]["indptr"]
        for b in blocks[1:]:
            indptr = np.concatenate([indptr, indptr[-1] + b["indptr"][1:]])
        return {
            "best": np.concatenate([b["best"] for b in blocks]),
            "best_idx": np.concatenate([b["best_idx"] for b in blocks]),
            "second": np.concatenate([b["second"] for b in blocks]),
            "indptr": indptr,
            "members": np.concatenate([b["members"] for b in blocks]),
            "member_dmins": np.concatenate(
                [b["member_dmins"] for b in blocks]
            ),
        }

    def expected_nn_many(
        self,
        qs,
        tier: str = "pruned",
        eps: Optional[float] = None,
        rel: float = 0.0,
        return_fallback: bool = False,
    ) -> Union[
        Tuple[np.ndarray, np.ndarray],
        Tuple[np.ndarray, np.ndarray, np.ndarray],
    ]:
        """Expected-distance NN winners: ``(indices, values)``.

        ``exact`` and ``pruned`` return identical winners and values
        (the full ``expected_distance_matrix`` argmin); ``approx``
        returns ε-certified winners/values from the quantized envelope
        (fallback rows resolved by the pruned tier;
        ``return_fallback=True`` appends the resolved-row mask).
        """
        self._check_tier(tier, eps)
        self._check_fallback_flag(return_fallback, tier)
        Q = kernels.as_query_array(qs)
        if tier == "approx":
            self.last_fallback_bounds = None
            # Validate the execution dtype up front so a bad config
            # fails loudly even when no row needs the fallback.
            use_f32 = self._use_float32() and self._use_grouped()
            ans = self.approx_index(eps, rel, "expected").expected_nn_many(Q)
            winners = ans.winners.copy()
            values = ans.values.copy()
            rows = np.flatnonzero(ans.fallback)
            if rows.size:
                if use_f32:
                    # Certified float32 mode: fallback rows resolve
                    # through the grouped kernels in single precision;
                    # the per-row certificates land in
                    # ``last_fallback_bounds`` for the session layer to
                    # fold into the tier's eps budget.
                    wi, vv, bounds = self._expected_nn_pairs_f32(Q[rows])
                    self.last_fallback_bounds = bounds
                else:
                    wi, vv = self.expected_nn_many(Q[rows], tier="pruned")
                winners[rows] = wi
                values[rows] = vv
            if return_fallback:
                return winners, values, ans.fallback
            return winners, values

        if tier == "pruned" and self.method == "dual":
            return self._expected_nn_streaming(Q)
        masks = self._pruned_masks(Q, 1, "expected", tier)

        def run(lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
            E = self._expected_block(
                Q[lo:hi], tier, mask=None if masks is None else masks(lo, hi)
            )
            arg = E.argmin(axis=1) if E.shape[0] else np.zeros(0, dtype=np.intp)
            return arg, E[np.arange(E.shape[0]), arg]

        blocks = self._run_tiles(Q.shape[0], run, tier=tier)
        if len(blocks) == 1:
            return blocks[0]
        return (
            np.concatenate([b[0] for b in blocks]),
            np.concatenate([b[1] for b in blocks]),
        )

    def _expected_nn_streaming(
        self, Q: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Winner evaluation over the dual CSR survivors: one
        ``expected_distance_many`` call per surviving object (its rows
        gathered from the CSR), folded into per-row running minima —
        no ``(m, n)`` expectation matrix, no per-tile re-dispatch.
        Ascending column order with a strict ``<`` update reproduces the
        dense argmin's lowest-index tie-breaking, so winners and values
        are bit-identical to the tiled path.  Under the thread backend
        the fold fans out over ascending *object* chunks (each with its
        own running minima) and merges them in chunk order with the same
        strict ``<`` — identical winners, parallel evaluator work.
        """
        m = Q.shape[0]
        res = self._dual_csr(Q, 1, "expected")
        if self._use_grouped():
            # Tag-grouped pair evaluation: flatten the survivor CSR into
            # (row, object) pair arrays, one vectorized kernel call per
            # model family present, then a per-row CSR min reduction
            # whose tie-breaking equals the strict-< fold below.
            rows = kernels.csr_rows(res.indptr)
            t0 = time.perf_counter()
            values, _ = _evaluators.expected_distance_pairs(
                self.eval_cache(), Q, rows, res.indices
            )
            winners, best = _evaluators.min_reduce_csr(
                res.indptr, res.indices, values, m
            )
            self._note_eval(res.indices.shape[0], time.perf_counter() - t0)
            return winners, best
        rows = kernels.csr_rows(res.indptr)
        order = np.argsort(res.indices, kind="stable")
        cols_sorted = res.indices[order]
        rows_sorted = rows[order]
        uniq, starts = np.unique(cols_sorted, return_index=True)
        ends = np.append(starts[1:], cols_sorted.shape[0])

        def fold(group_range: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray]:
            best = np.full(m, np.inf)
            arg = np.zeros(m, dtype=np.intp)
            for g in range(group_range[0], group_range[1]):
                i = uniq[g]
                r = rows_sorted[starts[g] : ends[g]]
                v = self.points[i].expected_distance_many(Q[r])
                upd = v < best[r]
                if np.any(upd):
                    rr = r[upd]
                    best[rr] = v[upd]
                    arg[rr] = i
            return best, arg

        backend = (
            self.parallel_backend
            if self.parallel_backend is not None
            else EXECUTION.parallel_backend
        )
        workers = _parallel.resolve_workers(self.parallel_workers)
        if backend == "thread" and workers > 1 and uniq.shape[0] > 1:
            chunks = _parallel.tile_ranges(
                uniq.shape[0],
                -(-uniq.shape[0] // min(workers, uniq.shape[0])),
            )
            parts = _parallel.map_ordered(
                fold, chunks, backend=backend, workers=workers
            )
            best, arg = parts[0]
            for best_c, arg_c in parts[1:]:
                # Ascending chunk order + strict < keeps the lowest
                # winning column on exact ties.
                upd = best_c < best
                best[upd] = best_c[upd]
                arg[upd] = arg_c[upd]
            return arg, best
        best, arg = fold((0, uniq.shape[0]))
        return arg, best

    def _expected_nn_pairs_f32(
        self, Q: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Grouped expected-NN resolution in certified float32.

        Same prune pass and CSR reduction as the float64 streaming path,
        but the pair kernels run in single precision and return per-pair
        error bounds; a row's certificate is its worst surviving pair
        bound (the min reduction is 1-Lipschitz in the sup norm, so a
        row value moves by at most the largest pair perturbation — and
        the reported winner's true value is within bound + bound of the
        true minimum).
        """
        indptr, cols = self.candidate_csr(Q, k=1, criterion="expected")
        rows = kernels.csr_rows(indptr)
        t0 = time.perf_counter()
        values, pair_bounds = _evaluators.expected_distance_pairs(
            self.eval_cache(), Q, rows, cols, use_float32=True
        )
        winners, best = _evaluators.min_reduce_csr(
            indptr, cols, values, Q.shape[0]
        )
        self._note_eval(cols.shape[0], time.perf_counter() - t0)
        bounds = _evaluators.max_reduce_csr(indptr, pair_bounds, Q.shape[0])
        return winners, best, bounds

    def expected_distance_matrix(
        self, qs, k: int = 1, tier: str = "pruned"
    ) -> np.ndarray:
        """``E[d(q, P_i)]`` on survivors, ``+inf`` on pruned pairs.

        The ``(m, n)`` output is the requested product here; it is still
        filled tile by tile so no *additional* full-size temporaries are
        staged.
        """
        if tier == "approx":
            raise QueryError("expected_distance_matrix has no approx tier")
        self._check_tier(tier, None)
        Q = kernels.as_query_array(qs)
        _resilience.require_bytes(
            Q.shape[0] * len(self.points) * 8,
            f"expected_distance_matrix output "
            f"(m={Q.shape[0]}, n={len(self.points)})",
        )
        masks = self._pruned_masks(Q, k, "expected", tier)
        blocks = self._run_tiles(
            Q.shape[0],
            lambda lo, hi: self._expected_block(
                Q[lo:hi], tier, k, None if masks is None else masks(lo, hi)
            ),
            tier=tier,
        )
        return blocks[0] if len(blocks) == 1 else np.vstack(blocks)

    def expected_knn_many(
        self, qs, k: int, tier: str = "pruned"
    ) -> np.ndarray:
        """Expected-distance kNN ranking, ``(m, k)`` indices."""
        n = len(self.points)
        if not 1 <= k <= n:
            raise QueryError(f"k must lie in [1, {n}]")
        if tier == "approx":
            raise QueryError("expected_knn_many has no approx tier")
        self._check_tier(tier, None)
        Q = kernels.as_query_array(qs)

        masks = self._pruned_masks(Q, k, "expected", tier)

        def run(lo: int, hi: int) -> np.ndarray:
            E = self._expected_block(
                Q[lo:hi], tier, k, None if masks is None else masks(lo, hi)
            )
            return np.argsort(E, axis=1, kind="stable")[:, :k]

        blocks = self._run_tiles(Q.shape[0], run, tier=tier)
        return blocks[0] if len(blocks) == 1 else np.vstack(blocks)

    def expected_knn_report_many(
        self, qs, k: int, tier: str = "pruned"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`expected_knn_many` plus the ranked expectations:
        ``(indices, values)``, each ``(m, k)``.

        The values are gathered from the very expectation matrix the
        ranking was argsorted from, so a cross-shard merge can re-sort
        candidates by ``(value, global index)`` and reproduce the
        single-process stable ranking exactly.
        """
        n = len(self.points)
        if not 1 <= k <= n:
            raise QueryError(f"k must lie in [1, {n}]")
        if tier not in ("exact", "pruned"):
            raise QueryError(
                f"expected_knn_report_many supports exact/pruned, "
                f"got {tier!r}")
        self._check_tier(tier, None)
        Q = kernels.as_query_array(qs)

        masks = self._pruned_masks(Q, k, "expected", tier)

        def run(lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
            E = self._expected_block(
                Q[lo:hi], tier, k, None if masks is None else masks(lo, hi)
            )
            idx = np.argsort(E, axis=1, kind="stable")[:, :k]
            return idx, np.take_along_axis(E, idx, axis=1)

        blocks = self._run_tiles(Q.shape[0], run, tier=tier)
        if len(blocks) == 1:
            return blocks[0]
        return (
            np.vstack([b[0] for b in blocks]),
            np.vstack([b[1] for b in blocks]),
        )

    def threshold_nn_exact_many(
        self,
        qs,
        tau: float,
        tier: str = "pruned",
        eps: Optional[float] = None,
        rel: float = 0.0,
        return_fallback: bool = False,
    ) -> Union[
        List[Dict[int, float]], Tuple[List[Dict[int, float]], np.ndarray]
    ]:
        """Exact threshold queries ([DYM+05] semantics).

        Only survivors can have ``pi_i(q) > 0`` and the realized NN is
        always a survivor, so the Eq. (2) sweep over the candidate
        subset returns the same probabilities as the full sweep.  The
        ``approx`` tier answers certified rows from the quantized index
        (settled cells report their certain winner with probability
        exactly ``1.0``) and sweeps only the fallback rows: the answer
        *sets* equal the pruned tier's, and the probabilities agree up
        to the sweep's float accumulation (which can land a certain
        winner at ``1.0 ± a few ulps``).
        """
        if not 0.0 <= tau < 1.0:
            raise QueryError("tau must lie in [0, 1)")
        self._check_tier(tier, eps)
        self._check_fallback_flag(return_fallback, tier)
        Q = kernels.as_query_array(qs)
        if tier == "approx":
            ans = self.approx_index(eps, rel, "support").threshold_nn_many(
                Q, tau
            )
            out = list(ans.answers)
            rows = np.flatnonzero(ans.fallback)
            if rows.size:
                resolved = self.threshold_nn_exact_many(
                    Q[rows], tau, tier="pruned"
                )
                for r, d in zip(rows, resolved):
                    out[r] = d
            if return_fallback:
                return out, ans.fallback
            return out
        if tier == "exact":
            out = []
            for q in Q:
                pi = quantification_probabilities(self.points, tuple(q))
                out.append({i: v for i, v in enumerate(pi) if v > tau})
            return out
        indptr, cols = self.candidate_csr(Q, criterion="support")
        if self._use_grouped() and not (
            cols.size and np.any(self.columns.tags[cols] != TAG_DISCRETE)
        ):
            # All candidates are discrete-tagged: gather every sweep
            # entry from the column store in one vectorized pass, then
            # run the unchanged per-query Eq. (2) sweep.  Mixed sets
            # (including duck-typed discrete models the column store
            # tags "other") fall through to the per-object path, which
            # preserves the historical validation / error semantics.
            t0 = time.perf_counter()
            entries = _evaluators.gather_sweep_entries(
                self.columns, Q, indptr, cols
            )
            out: List[Dict[int, float]] = []
            for r in range(indptr.shape[0] - 1):
                idx = cols[indptr[r] : indptr[r + 1]]
                pi = sweep_quantification(entries[r], idx.shape[0])
                out.append(
                    {int(idx[j]): v for j, v in enumerate(pi) if v > tau}
                )
            self._note_eval(cols.shape[0], time.perf_counter() - t0)
            return out
        out: List[Dict[int, float]] = []
        for r, q in enumerate(Q):
            idx = cols[indptr[r] : indptr[r + 1]]
            sub = [self.points[i] for i in idx]
            pi = quantification_probabilities(sub, tuple(q))
            out.append(
                {int(idx[j]): v for j, v in enumerate(pi) if v > tau}
            )
        return out

    # -- introspection -------------------------------------------------------
    def prune_stats(
        self, qs, criterion: str = "support", k: int = 1
    ) -> Dict[str, float]:
        """Mean/max candidate counts for a query matrix (diagnostics).

        ``criterion`` / ``k`` must match the answer path being diagnosed
        (``k`` is the expected-kNN neighbor count; 1 otherwise).  With
        the dual generator the result additionally carries the traversal
        telemetry of this pass: ``node_pairs_visited`` /
        ``node_pairs_pruned`` (tree-node pairs bounded / discarded),
        ``point_node_pairs`` and ``refined_pairs`` (leaf-stage bound
        evaluations), and ``survivors`` (total surviving pairs).
        """
        indptr, _ = self.candidate_csr(qs, k=k, criterion=criterion)
        counts = np.diff(indptr)
        n = float(len(self.points))
        out = {
            "n": n,
            "queries": float(indptr.shape[0] - 1),
            "mean_candidates": float(counts.mean()) if counts.size else 0.0,
            "max_candidates": float(counts.max()) if counts.size else 0.0,
            "mean_fraction": float(counts.mean() / n) if counts.size else 0.0,
        }
        if self.method == "dual" and self.last_dual_stats is not None:
            out.update(self.last_dual_stats)
        return out
