"""The prune-then-evaluate query planner.

Every exact structure in this library admits the same pruning argument:
an object ``P_i`` cannot be the (probable / expected / nonzero) nearest
neighbor of ``q`` when ``dmin_i(q) > min_j dmax_j(q)``.  The planner
evaluates that test **vectorized over the whole query matrix** using the
precomputed envelope brackets of :class:`repro.uncertain.ModelColumns`
(``lb <= dmin``, ``dmax <= ub`` ⇒ pruning on ``lb > min_j ub_j`` is
always safe), shrinks each query's candidate set, and dispatches only
the survivors to the existing batched evaluators.  Results are exactly
identical to the unpruned paths:

* the realized / expected winner always survives (its own ``lb`` is at
  most its ``dmax``, which bounds the cutoff);
* every pruned object is *strictly* farther than the per-query cutoff,
  so it can neither win nor tie any evaluator's minimum, and for
  Lemma 2.1 the minimum (and decisive second minimum) of the ``dmax``
  row is always attained at a candidate.

Candidate generation runs either as one flat vectorized pass over the
``(m, n)`` bound matrices (default for moderate ``n``) or through a
bulk-loaded leaf grouping over the SoA bboxes (STR tiles or
``np.argpartition`` kd splits from :mod:`repro.index.bulk` — no
recursive pointer builds), which prunes whole groups before touching
their members.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError
from ..geometry import kernels
from ..index.bulk import group_bboxes, kd_leaves, str_leaves
from ..uncertain.columns import ModelColumns
from .nonzero import nonzero_from_matrices
from .quantification import quantification_probabilities

__all__ = ["QueryPlanner"]

#: Relative slack applied to every pruning cutoff so a bound computed a
#: few ulps above its true value can never discard a genuine candidate.
_CUTOFF_SLACK = 1.0 + 1e-12

#: ``method="auto"`` uses the flat (m, n) pass up to this many objects
#: and the grouped leaf prune beyond it.
_AUTO_GROUP_THRESHOLD = 4096


class QueryPlanner:
    """Prune-then-evaluate planner over a fixed uncertain point set.

    Parameters
    ----------
    points:
        The uncertain points (any mix of models).
    columns:
        Optional precomputed :class:`ModelColumns` for ``points`` (built
        once here when omitted).
    method:
        ``"flat"`` — one vectorized pass over the full ``(m, n)`` bound
        matrices; ``"kdtree"`` / ``"rtree"`` — group objects into bulk
        leaves (argpartition kd splits / STR tiles) and prune whole
        groups first; ``"auto"`` picks flat for moderate ``n``.
    leaf_size:
        Group capacity for the tree methods.
    """

    def __init__(
        self,
        points: Sequence,
        columns: Optional[ModelColumns] = None,
        method: str = "auto",
        leaf_size: int = 32,
    ):
        self.points = list(points)
        if not self.points:
            raise QueryError("QueryPlanner requires at least one point")
        self.columns = columns if columns is not None else ModelColumns(self.points)
        if self.columns.n != len(self.points):
            raise QueryError("columns were built over a different point set")
        if method not in ("auto", "flat", "kdtree", "rtree"):
            raise QueryError(f"unknown planner method {method!r}")
        if method == "auto":
            method = (
                "flat" if len(self.points) <= _AUTO_GROUP_THRESHOLD else "kdtree"
            )
        self.method = method
        self.leaf_size = int(leaf_size)
        self._leaves: Optional[List[np.ndarray]] = None
        self._leaf_bboxes: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.points)

    # -- candidate generation ------------------------------------------------
    def _groups(self) -> Tuple[List[np.ndarray], np.ndarray]:
        if self._leaves is None:
            if self.method == "rtree":
                self._leaves = str_leaves(self.columns.bboxes, self.leaf_size)
            else:
                self._leaves = kd_leaves(self.columns.centers, self.leaf_size)
            self._leaf_bboxes = group_bboxes(self.columns.bboxes, self._leaves)
        return self._leaves, self._leaf_bboxes

    def _member_bounds(
        self, Qsub: np.ndarray, members: Optional[np.ndarray], criterion: str
    ):
        """The criterion's ``(lb, ub)`` bracket, optionally on a column
        subset (``members=None`` is the full set)."""
        if criterion == "expected":
            return self.columns.expected_bounds_many(Qsub, members=members)
        return self.columns.envelope_bounds_many(Qsub, members=members)

    def candidate_mask(
        self, qs, k: int = 1, criterion: str = "support"
    ) -> np.ndarray:
        """Boolean ``(m, n)`` mask of objects surviving the prune.

        Object ``i`` survives query ``q`` when its lower bound does not
        exceed the ``k``-th smallest upper bound over the set (``k = 1``
        is the nearest-neighbor test ``dmin <= min dmax``); ``criterion``
        selects the support (``dmin``/``dmax``) or expected-distance
        bracket.  Every query keeps at least ``k`` candidates.
        """
        Q = kernels.as_query_array(qs)
        n = len(self.points)
        k = min(max(int(k), 1), n)
        if criterion not in ("support", "expected"):
            raise QueryError(f"unknown pruning criterion {criterion!r}")
        if self.method == "flat" or Q.shape[0] == 0:
            lb, ub = self._member_bounds(Q, None, criterion)
            cutoff = self._kth_smallest(ub, k) * _CUTOFF_SLACK
            return lb <= cutoff[:, None]
        return self._grouped_mask(Q, k, criterion)

    @staticmethod
    def _kth_smallest(values: np.ndarray, k: int) -> np.ndarray:
        if values.shape[1] == k:
            return values.max(axis=1)
        return np.partition(values, k - 1, axis=1)[:, k - 1]

    def _grouped_mask(self, Q: np.ndarray, k: int, criterion: str) -> np.ndarray:
        """Two-stage prune: leaf-level bbox bounds, then member bounds.

        Stage 1 bounds each group by its aggregate bbox (``maxdist`` to
        the group bbox dominates every member's ``dmax``, so the k-th
        smallest group bound is a valid cutoff) and drops dead groups per
        query; stage 2 tightens the cutoff with surviving members' upper
        bounds and emits the member-level mask.
        """
        m = Q.shape[0]
        n = len(self.points)
        leaves, leaf_bb = self._groups()
        leaf_lb = kernels.rect_mindist_many(Q, leaf_bb)
        leaf_ub = kernels.rect_maxdist_many(Q, leaf_bb)
        # Each group bound dominates >= |group| member dmax values, so
        # scanning groups by ascending ub until k members are covered
        # yields a valid (if loose) k-th-smallest-dmax upper bound.
        sizes = np.asarray([len(g) for g in leaves], dtype=np.intp)
        order = np.argsort(leaf_ub, axis=1, kind="stable")
        covered = np.cumsum(sizes[order], axis=1)
        need = np.argmax(covered >= k, axis=1)
        cutoff0 = leaf_ub[np.arange(m), order[np.arange(m), need]]
        alive = leaf_lb <= (cutoff0 * _CUTOFF_SLACK)[:, None]
        # Stage 2a: tighten the cutoff from surviving members' ubs.
        lb = np.full((m, n), np.inf)
        ub = np.full((m, n), np.inf)
        for g, members in enumerate(leaves):
            rows = np.flatnonzero(alive[:, g])
            if not rows.size:
                continue
            glb, gub = self._member_bounds(Q[rows], members, criterion)
            lb[rows[:, None], members[None, :]] = glb
            ub[rows[:, None], members[None, :]] = gub
        cutoff = self._kth_smallest(
            np.minimum(ub, cutoff0[:, None]), k
        ) * _CUTOFF_SLACK
        return lb <= cutoff[:, None]

    def candidate_lists(
        self, qs, k: int = 1, criterion: str = "support"
    ) -> List[np.ndarray]:
        """Per-query arrays of surviving object indices."""
        mask = self.candidate_mask(qs, k=k, criterion=criterion)
        return [np.flatnonzero(row) for row in mask]

    # -- pruned dispatch -----------------------------------------------------
    def nonzero_nn_many(self, qs) -> List[FrozenSet[int]]:
        """Pruned Lemma 2.1: identical to
        :meth:`repro.UncertainSet.nonzero_nn_many`, evaluating exact
        ``dmin``/``dmax`` only on survivors."""
        Q = kernels.as_query_array(qs)
        mask = self.candidate_mask(Q, criterion="support")
        m, n = mask.shape
        dmins = np.full((m, n), np.inf)
        dmaxs = np.full((m, n), np.inf)
        for i, p in enumerate(self.points):
            rows = np.flatnonzero(mask[:, i])
            if rows.size:
                dmins[rows, i] = p.dmin_many(Q[rows])
                dmaxs[rows, i] = p.dmax_many(Q[rows])
        return nonzero_from_matrices(dmins, dmaxs)

    def expected_nn_many(self, qs) -> Tuple[np.ndarray, np.ndarray]:
        """Pruned expected-distance NN: ``(winner indices, values)``,
        identical to the full ``expected_distance_matrix`` argmin."""
        E = self.expected_distance_matrix(qs)
        arg = E.argmin(axis=1)
        return arg, E[np.arange(E.shape[0]), arg]

    def expected_distance_matrix(self, qs, k: int = 1) -> np.ndarray:
        """``E[d(q, P_i)]`` on survivors, ``+inf`` on pruned pairs."""
        Q = kernels.as_query_array(qs)
        mask = self.candidate_mask(Q, k=k, criterion="expected")
        m, n = mask.shape
        E = np.full((m, n), np.inf)
        for i, p in enumerate(self.points):
            rows = np.flatnonzero(mask[:, i])
            if rows.size:
                E[rows, i] = p.expected_distance_many(Q[rows])
        return E

    def expected_knn_many(self, qs, k: int) -> np.ndarray:
        """Pruned expected-distance kNN ranking, ``(m, k)`` indices."""
        n = len(self.points)
        if not 1 <= k <= n:
            raise QueryError(f"k must lie in [1, {n}]")
        E = self.expected_distance_matrix(qs, k=k)
        return np.argsort(E, axis=1, kind="stable")[:, :k]

    def threshold_nn_exact_many(self, qs, tau: float) -> List[Dict[int, float]]:
        """Pruned exact threshold queries ([DYM+05] semantics).

        Only survivors can have ``pi_i(q) > 0`` and the realized NN is
        always a survivor, so the Eq. (2) sweep over the candidate
        subset returns the same probabilities as the full sweep.
        """
        if not 0.0 <= tau < 1.0:
            raise QueryError("tau must lie in [0, 1)")
        Q = kernels.as_query_array(qs)
        lists = self.candidate_lists(Q, criterion="support")
        out: List[Dict[int, float]] = []
        for q, idx in zip(Q, lists):
            sub = [self.points[i] for i in idx]
            pi = quantification_probabilities(sub, tuple(q))
            out.append(
                {int(idx[j]): v for j, v in enumerate(pi) if v > tau}
            )
        return out

    # -- introspection -------------------------------------------------------
    def prune_stats(self, qs, criterion: str = "support") -> Dict[str, float]:
        """Mean/max candidate counts for a query matrix (diagnostics)."""
        mask = self.candidate_mask(qs, criterion=criterion)
        counts = mask.sum(axis=1)
        n = float(len(self.points))
        return {
            "n": n,
            "queries": float(mask.shape[0]),
            "mean_candidates": float(counts.mean()) if counts.size else 0.0,
            "max_candidates": float(counts.max()) if counts.size else 0.0,
            "mean_fraction": float(counts.mean() / n) if counts.size else 0.0,
        }
