"""Vertex census of the nonzero Voronoi diagram ``V!=0`` (disk case).

The proof of Theorem 2.5 classifies the vertices of ``V!=0(P)``:

* **type (b)** — intersections of two curves ``gamma_i``, ``gamma_j``:
  centers of *witness disks* touching ``D_i`` and ``D_j`` from the
  outside and one disk ``D_k`` from the inside, containing no disk of
  ``D`` in their interior (Fig. 3, point ``q'``);
* **type (a)** — breakpoints of a ``gamma_i``: witness disks touching
  ``D_i`` from the outside and two disks ``D_j, D_k`` from the inside,
  again containing no disk (Fig. 3, point ``q``).

Each triple contributes O(1) candidate witnesses (a quadratic system),
so enumerating all triples counts every vertex exactly — the same
argument that yields the O(n^3) upper bound.  This census is the ground
truth for the complexity experiments (Theorems 2.5, 2.7, 2.8, 2.10): the
lower-bound constructions are verified by counting their witnesses.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import List, Sequence, Tuple

from ..geometry.circle import Circle, apollonius_tangent_circles
from .gamma import disks_of


@dataclasses.dataclass
class Vertex:
    """One vertex of ``V!=0`` with its witness disk."""

    x: float
    y: float
    rho: float  # witness radius = Delta(vertex)
    outside: Tuple[int, ...]  # disks touched from outside (delta_i = rho)
    inside: Tuple[int, ...]  # disks touched from inside (Delta_k = rho)

    @property
    def kind(self) -> str:
        return "crossing" if len(self.outside) == 2 else "breakpoint"


@dataclasses.dataclass
class CensusResult:
    """Vertex census of ``V!=0`` for a disk family."""

    vertices: List[Vertex]

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_crossings(self) -> int:
        return sum(1 for v in self.vertices if v.kind == "crossing")

    @property
    def num_breakpoints(self) -> int:
        return sum(1 for v in self.vertices if v.kind == "breakpoint")

    def complexity_estimate(self) -> int:
        """Vertex count — the standard complexity measure of the diagram
        (edges and faces are proportional by planarity, Theorem 2.5)."""
        return self.num_vertices


def _is_empty_witness(
    cx: float,
    cy: float,
    rho: float,
    centers_x: Sequence[float],
    centers_y: Sequence[float],
    radii: Sequence[float],
    rel_tol: float,
) -> bool:
    """True when the witness disk contains no input disk in its interior,
    i.e. ``Delta_l(v) >= rho`` for every ``l`` (up to tolerance)."""
    bound = rho * (1.0 - rel_tol) - rel_tol
    for lx, ly, lr in zip(centers_x, centers_y, radii):
        if math.hypot(lx - cx, ly - cy) + lr < bound:
            return False
    return True


def nonzero_voronoi_census(
    points: Sequence,
    rel_tol: float = 1e-9,
    include_breakpoints: bool = True,
) -> CensusResult:
    """Enumerate the vertices of ``V!=0`` for disk-backed points.

    O(n^3) candidate triples, each validated in O(n).  ``rel_tol``
    controls the emptiness tolerance (lower-bound constructions place
    witnesses tangent to many disks at once; the default keeps genuinely
    tangent disks from failing the open-interior test).
    """
    disks = disks_of(points)
    n = len(disks)
    cx = [d.center.x for d in disks]
    cy = [d.center.y for d in disks]
    rr = [d.radius for d in disks]
    vertices: List[Vertex] = []

    # Type (b): pairs outside x one inside.
    for i, j in itertools.combinations(range(n), 2):
        for k in range(n):
            if k == i or k == j:
                continue
            sols = apollonius_tangent_circles(
                [
                    (cx[i], cy[i], rr[i]),
                    (cx[j], cy[j], rr[j]),
                    (cx[k], cy[k], -rr[k]),
                ]
            )
            for w in sols:
                if w.radius < rr[k] - rel_tol * (1.0 + rr[k]):
                    continue
                if _is_empty_witness(
                    w.center.x, w.center.y, w.radius, cx, cy, rr, rel_tol
                ):
                    vertices.append(
                        Vertex(
                            w.center.x,
                            w.center.y,
                            w.radius,
                            outside=(i, j),
                            inside=(k,),
                        )
                    )

    if include_breakpoints:
        # Type (a): one outside x pairs inside.
        for j, k in itertools.combinations(range(n), 2):
            for i in range(n):
                if i == j or i == k:
                    continue
                sols = apollonius_tangent_circles(
                    [
                        (cx[i], cy[i], rr[i]),
                        (cx[j], cy[j], -rr[j]),
                        (cx[k], cy[k], -rr[k]),
                    ]
                )
                for w in sols:
                    if w.radius < max(rr[j], rr[k]) - rel_tol * (
                        1.0 + max(rr[j], rr[k])
                    ):
                        continue
                    if _is_empty_witness(
                        w.center.x, w.center.y, w.radius, cx, cy, rr, rel_tol
                    ):
                        vertices.append(
                            Vertex(
                                w.center.x,
                                w.center.y,
                                w.radius,
                                outside=(i,),
                                inside=(j, k),
                            )
                        )
    return CensusResult(vertices)
