"""Near-linear-size structures for ``NN!=0`` queries (Section 3).

The paper's Theorem 3.1 plan has two stages:

1. compute ``Delta(q) = min_i Delta_i(q)`` (an additively weighted NN
   query — the paper uses the weighted Voronoi diagram ``M``);
2. report every ``P_i`` with ``delta_i(q) < Delta(q)`` (the paper uses
   the [KMR+16] dynamic weighted-Voronoi reporting structure).

Here stage 1 runs on an augmented kd-tree (disk case: exact
``d(q, c_i) + r_i`` branch-and-bound) or an R-tree best-first search
(general case: ``rect_mindist`` lower-bounds ``Delta_i``); stage 2 is an
output-sensitive weighted range report.  Both stages are exact; only the
worst-case query bound is traded for expected-case pruning (the paper's
partition-tree machinery — [AC09], Theorem 3.2 — is "too complex to be
implemented", its own Remark (ii)).
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Sequence, Tuple

from ..errors import GeometryError
from ..index.kdtree import KdTree
from ..index.rtree import RTree
from .gamma import disks_of
from .nonzero import UncertainSet


class DiskNonzeroIndex:
    """Theorem 3.1 analogue for disk uncertainty regions.

    O(n) space; both stages run on one augmented kd-tree over disk
    centers with radii as additive weights.
    """

    def __init__(self, points: Sequence):
        self.uset = UncertainSet(points)
        disks = disks_of(points)
        self._tree = KdTree(
            [(d.center.x, d.center.y) for d in disks],
            weights=[d.radius for d in disks],
        )

    def envelope(self, q) -> float:
        """Stage 1: ``Delta(q)``."""
        _, val = self._tree.weighted_nearest(q)
        return val

    def query(self, q) -> FrozenSet[int]:
        """``NN!=0(q)`` in output-sensitive time."""
        delta = self.envelope(q)
        return frozenset(self._tree.report_weighted_below(q, delta, strict=True))


def _with_tie_fallback(uset: UncertainSet, rtree: RTree, q, members) -> FrozenSet[int]:
    """Handle the measure-zero tie of Lemma 2.1's ``j != i`` quantifier.

    The two-stage plan reports ``{i : delta_i(q) < Delta(q)}``.  The
    point ``i*`` attaining ``Delta(q)`` may satisfy
    ``delta_{i*}(q) = Delta(q)`` (all of its support equidistant from
    ``q``) and still be a member — the condition only compares against
    *other* points.  Detect that case and test against the second
    envelope minimum.
    """
    arg, _ = rtree.best_first_min(q, lambda i: uset.big_delta(i, q))
    if arg in members:
        return frozenset(members)
    _, second = rtree.best_first_min(
        q, lambda i: math.inf if i == arg else uset.big_delta(i, q)
    )
    if uset.delta(arg, q) < second:
        return frozenset(members | {arg})
    return frozenset(members)


class GenericNonzeroIndex:
    """Two-stage ``NN!=0`` index for arbitrary uncertainty regions.

    Stage 1 minimises the exact ``Delta_i(q)`` by best-first search over
    an R-tree of support boxes (``rect_mindist`` is a valid lower bound
    for the farthest-point distance).  Stage 2 reports the supports whose
    bounding box meets the witness disk and filters by exact
    ``delta_i(q)``.
    """

    def __init__(self, points: Sequence):
        self.uset = UncertainSet(points)
        self._rtree = RTree([p.support_bbox() for p in points])

    def envelope(self, q) -> float:
        _, val = self._rtree.best_first_min(
            q, lambda i: self.uset.big_delta(i, q)
        )
        return val

    def query(self, q) -> FrozenSet[int]:
        delta = self.envelope(q)
        candidates = self._rtree.query_disk(q, delta)
        members = {
            i for i in candidates if self.uset.delta(i, q) < delta
        }
        return _with_tie_fallback(self.uset, self._rtree, q, members)


class DiscreteTwoStageIndex:
    """Theorem 3.2 analogue for discrete distributions.

    Stage 1 minimises ``Delta_i(q)`` (farthest location of ``P_i``) via
    R-tree best-first with exact hull-vertex evaluation at the leaves;
    stage 2 range-reports the ``N = nk`` locations inside the open
    witness disk on a kd-tree and deduplicates owners.
    """

    def __init__(self, points: Sequence):
        self.uset = UncertainSet(points)
        if not self.uset.all_discrete():
            raise GeometryError("DiscreteTwoStageIndex requires discrete points")
        self._rtree = RTree([p.support_bbox() for p in points])
        locations: List[Tuple[float, float]] = []
        owners: List[int] = []
        for i, p in enumerate(points):
            for loc in p.locations:
                locations.append(loc)
                owners.append(i)
        self._owners = owners
        self._loc_tree = KdTree(locations)

    @property
    def total_locations(self) -> int:
        return len(self._owners)

    def envelope(self, q) -> float:
        _, val = self._rtree.best_first_min(
            q, lambda i: self.uset.big_delta(i, q)
        )
        return val

    def query(self, q) -> FrozenSet[int]:
        delta = self.envelope(q)
        hits = self._loc_tree.range_disk(q, delta, strict=True)
        members = {self._owners[h] for h in hits}
        return _with_tie_fallback(self.uset, self._rtree, q, members)
