"""Deterministic tile fan-out over ``concurrent.futures`` backends.

The tiled execution engine (:mod:`repro.core.planner`) splits a query
batch into independent row tiles; this module runs the per-tile work
either serially, across a thread pool (NumPy kernels release the GIL,
so bound passes overlap), or across a process pool (requires the tile
function to be picklable).  Whatever the backend, results are assembled
**by tile index**, so answers are bit-identical to the serial order —
parallelism never changes an answer, only the wall clock.

Every work unit passes through a resilience checkpoint (site
``"parallel.tile"``): injected faults fire there, and the active
cooperative deadline is charged one unit.  Worker failures are
recovered, not propagated: a tile that dies with
:class:`repro.errors.WorkerCrashError`, and every tile stranded by a
``BrokenProcessPool``, is retried serially in the parent (with fault
injection suppressed — the harness models transient faults).  Because
results are keyed by tile index, recovered runs return bit-identical
answers; the recovery counters surface in ``Engine.stats()["faults"]``.
"""

from __future__ import annotations

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool
import os
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..config import EXECUTION
from ..errors import QueryError, ResourceLimitError, WorkerCrashError
from ..resilience import checkpoint
from ..resilience import faults as _faults

__all__ = ["map_ordered", "map_tiles", "resolve_workers", "tile_ranges"]

T = TypeVar("T")

_BACKENDS = ("serial", "thread", "process")

TILE_SITE = "parallel.tile"


def resolve_workers(
    workers: Optional[int] = None,
    *,
    strict: bool = False,
    what: str = "worker pool",
) -> int:
    """Worker count: the explicit value, else config, else CPU count —
    clamped to ``EXECUTION.max_workers`` when that cap is set.

    Explicit non-positive requests (``workers <= 0``, or a non-positive
    ``EXECUTION.parallel_workers``) are configuration errors and raise
    :class:`repro.errors.QueryError` instead of being silently maxed up
    to one worker.

    ``strict=True`` turns the cap from a clamp into an admission check:
    an explicit request above ``EXECUTION.max_workers`` raises
    :class:`repro.errors.ResourceLimitError` instead of being quietly
    reduced.  The cluster layer resolves its shard count this way — a
    topology the operator capped out must be rejected at construction,
    not silently reshaped.
    """
    explicit = workers if workers is not None else EXECUTION.parallel_workers
    if explicit is None:
        count = os.cpu_count() or 1
    else:
        count = int(explicit)
        if count <= 0:
            raise QueryError(
                f"worker count must be a positive integer, got {explicit!r}"
            )
    cap = EXECUTION.max_workers
    if cap is not None:
        cap = int(cap)
        if cap <= 0:
            raise QueryError(
                f"EXECUTION.max_workers must be a positive integer or None, "
                f"got {EXECUTION.max_workers!r}"
            )
        if strict and explicit is not None and count > cap:
            raise ResourceLimitError(
                f"{what} requests {count} workers but EXECUTION.max_workers "
                f"caps fan-out at {cap}",
                what=what,
            )
        count = min(count, cap)
    return max(1, count)


def tile_ranges(m: int, rows_per_tile: int) -> List[Tuple[int, int]]:
    """Half-open row ranges ``[(lo, hi), ...]`` covering ``m`` rows.

    ``m == 0`` yields a single empty range so callers still produce a
    (zero-row) result block of the right type.
    """
    rows = max(1, int(rows_per_tile))
    if m <= 0:
        return [(0, 0)]
    return [(lo, min(lo + rows, m)) for lo in range(0, m, rows)]


def _checked_call(fn: Callable[..., T], index: int, args: Tuple) -> T:
    """One work unit behind its resilience checkpoint.

    Module-level (not a closure) so the process backend can pickle it;
    ``fn`` travels as an ordinary argument.
    """
    checkpoint(TILE_SITE, index)
    return fn(*args)


def _collected_call(
    collectors: Tuple, fn: Callable[..., T], index: int, args: Tuple
) -> T:
    """:func:`_checked_call` under the submitting thread's fault-stats
    collectors, so events fired inside pool worker threads are still
    attributed to the engine that issued the query."""
    with _faults.adopting(collectors):
        return _checked_call(fn, index, args)


def _map_argtuples(
    fn: Callable[..., T],
    argtuples: Sequence[Tuple],
    backend: Optional[str],
    workers: Optional[int],
) -> List[T]:
    """Shared runner behind :func:`map_tiles` / :func:`map_ordered`:
    ``[fn(*args) for args in argtuples]`` under the chosen backend, with
    results ordered by position regardless of completion order.  ``fn``
    is submitted through the picklable :func:`_checked_call` shim, so
    picklable functions stay process-backend compatible."""
    if backend is None:
        backend = EXECUTION.parallel_backend
    if backend not in _BACKENDS:
        raise QueryError(
            f"unknown parallel backend {backend!r}; expected one of {_BACKENDS}"
        )
    n_workers = resolve_workers(workers)
    if backend == "serial" or n_workers == 1 or len(argtuples) <= 1:
        return [_checked_call(fn, i, args) for i, args in enumerate(argtuples)]
    pool_cls = (
        concurrent.futures.ThreadPoolExecutor
        if backend == "thread"
        else concurrent.futures.ProcessPoolExecutor
    )
    results: List[T] = [None] * len(argtuples)  # type: ignore[list-item]
    done = [False] * len(argtuples)
    crashes = 0
    pool_broke = False
    # Thread-pool workers adopt this thread's per-engine fault-stats
    # collectors; process children keep their own (their counters are
    # process-local and unreachable from the parent either way).
    collectors = (
        _faults.current_collectors() if backend == "thread" else ()
    )
    try:
        with pool_cls(max_workers=min(n_workers, len(argtuples))) as pool:
            futures = {
                pool.submit(_collected_call, collectors, fn, i, args): i
                for i, args in enumerate(argtuples)
            }
            for fut in concurrent.futures.as_completed(futures):
                i = futures[fut]
                try:
                    results[i] = fut.result()
                    done[i] = True
                except WorkerCrashError:
                    # A single tile died inside its worker; the pool is
                    # still healthy.  Leave the tile for serial retry.
                    crashes += 1
                except BrokenProcessPool:
                    # A worker process died hard; every not-yet-done
                    # tile is stranded.  Fall through to serial retry.
                    pool_broke = True
    except BrokenProcessPool:
        pool_broke = True
    missing = [i for i, ok in enumerate(done) if not ok]
    if crashes:
        _faults._record("worker_crashes", crashes)
    if pool_broke:
        _faults._record("pools_broken")
    if missing:
        _faults._record("tiles_retried", len(missing))
        # Serial retry in the parent, with fault injection suppressed
        # (transient-fault model).  Deadline checkpoints stay live.
        with _faults.suppressed():
            for i in missing:
                results[i] = _checked_call(fn, i, argtuples[i])
                done[i] = True
    return results


def map_ordered(
    fn: Callable[..., T],
    items: Sequence,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> List[T]:
    """``[fn(item) for item in items]`` under the chosen backend.

    The task-shaped sibling of :func:`map_tiles`: where tiles are
    contiguous row ranges of one query matrix, items are arbitrary
    independent units of work — the dual-tree traversal fans out over
    *query subtrees* here instead of row tiles.  Results are ordered by
    item position regardless of completion order, so every backend
    returns identical output.
    """
    return _map_argtuples(fn, [(item,) for item in items], backend, workers)


def map_tiles(
    fn: Callable[[int, int], T],
    tiles: Sequence[Tuple[int, int]],
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> List[T]:
    """``[fn(lo, hi) for (lo, hi) in tiles]`` under the chosen backend.

    ``backend=None`` reads :data:`repro.config.EXECUTION`.  The output
    list is ordered by tile position regardless of completion order, so
    all backends are interchangeable.  The process backend requires
    ``fn`` (and everything it closes over) to be picklable; the planner
    therefore defaults to threads for its model-object workloads.
    Failed tiles (worker crashes, broken process pools) are retried
    serially in the parent — see the module docstring.
    """
    return _map_argtuples(fn, list(tiles), backend, workers)
