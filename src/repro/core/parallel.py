"""Deterministic tile fan-out over ``concurrent.futures`` backends.

The tiled execution engine (:mod:`repro.core.planner`) splits a query
batch into independent row tiles; this module runs the per-tile work
either serially, across a thread pool (NumPy kernels release the GIL,
so bound passes overlap), or across a process pool (requires the tile
function to be picklable).  Whatever the backend, results are assembled
**by tile index**, so answers are bit-identical to the serial order —
parallelism never changes an answer, only the wall clock.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..config import EXECUTION
from ..errors import QueryError

__all__ = ["map_ordered", "map_tiles", "resolve_workers", "tile_ranges"]

T = TypeVar("T")

_BACKENDS = ("serial", "thread", "process")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: the explicit value, else config, else CPU count."""
    if workers is None:
        workers = EXECUTION.parallel_workers
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


def tile_ranges(m: int, rows_per_tile: int) -> List[Tuple[int, int]]:
    """Half-open row ranges ``[(lo, hi), ...]`` covering ``m`` rows.

    ``m == 0`` yields a single empty range so callers still produce a
    (zero-row) result block of the right type.
    """
    rows = max(1, int(rows_per_tile))
    if m <= 0:
        return [(0, 0)]
    return [(lo, min(lo + rows, m)) for lo in range(0, m, rows)]


def _map_argtuples(
    fn: Callable[..., T],
    argtuples: Sequence[Tuple],
    backend: Optional[str],
    workers: Optional[int],
) -> List[T]:
    """Shared runner behind :func:`map_tiles` / :func:`map_ordered`:
    ``[fn(*args) for args in argtuples]`` under the chosen backend, with
    results ordered by position regardless of completion order.  ``fn``
    is submitted as-is (no wrapper closures), so picklable functions
    stay process-backend compatible."""
    if backend is None:
        backend = EXECUTION.parallel_backend
    if backend not in _BACKENDS:
        raise QueryError(
            f"unknown parallel backend {backend!r}; expected one of {_BACKENDS}"
        )
    n_workers = resolve_workers(workers)
    if backend == "serial" or n_workers == 1 or len(argtuples) <= 1:
        return [fn(*args) for args in argtuples]
    pool_cls = (
        concurrent.futures.ThreadPoolExecutor
        if backend == "thread"
        else concurrent.futures.ProcessPoolExecutor
    )
    results: List[T] = [None] * len(argtuples)  # type: ignore[list-item]
    with pool_cls(max_workers=min(n_workers, len(argtuples))) as pool:
        futures = {
            pool.submit(fn, *args): i for i, args in enumerate(argtuples)
        }
        for fut in concurrent.futures.as_completed(futures):
            results[futures[fut]] = fut.result()
    return results


def map_ordered(
    fn: Callable[..., T],
    items: Sequence,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> List[T]:
    """``[fn(item) for item in items]`` under the chosen backend.

    The task-shaped sibling of :func:`map_tiles`: where tiles are
    contiguous row ranges of one query matrix, items are arbitrary
    independent units of work — the dual-tree traversal fans out over
    *query subtrees* here instead of row tiles.  Results are ordered by
    item position regardless of completion order, so every backend
    returns identical output.
    """
    return _map_argtuples(fn, [(item,) for item in items], backend, workers)


def map_tiles(
    fn: Callable[[int, int], T],
    tiles: Sequence[Tuple[int, int]],
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> List[T]:
    """``[fn(lo, hi) for (lo, hi) in tiles]`` under the chosen backend.

    ``backend=None`` reads :data:`repro.config.EXECUTION`.  The output
    list is ordered by tile position regardless of completion order, so
    all backends are interchangeable.  The process backend requires
    ``fn`` (and everything it closes over) to be picklable; the planner
    therefore defaults to threads for its model-object workloads.
    """
    return _map_argtuples(fn, list(tiles), backend, workers)
