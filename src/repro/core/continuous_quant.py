"""Quantification probabilities for continuous distributions (Eq. 1).

    ``pi_i(q) = integral over r of g_{q,i}(r) * prod_{j != i} (1 - G_{q,j}(r))``

The paper notes exact evaluation "requires complex n-dimensional
integration"; with the per-point distance cdfs available the integral is
one-dimensional, and this module evaluates it by adaptive Simpson
quadrature split at the cdf kink radii.  It is the ground-truth baseline
for the Monte-Carlo structure (Section 4.2) and corresponds to the
numeric-integration approach of [CKP04].
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..quadrature import adaptive_simpson
from .nonzero import UncertainSet


def continuous_quantification(
    points: Sequence,
    q,
    i: int,
    tol: float = 1e-8,
) -> float:
    """``pi_i(q)`` by quadrature of Eq. (1)."""
    uset = UncertainSet(points)
    pi_pt = uset[i]
    lo = pi_pt.dmin(q)
    hi = pi_pt.dmax(q)
    if hi <= lo:
        hi = lo + 1e-12
    # Integration can stop once some other point is certainly closer.
    cutoff = min(p.dmax(q) for j, p in enumerate(points) if j != i) if len(
        points
    ) > 1 else hi
    hi = min(hi, cutoff)
    if hi <= lo:
        return 0.0

    def integrand(r: float) -> float:
        g = pi_pt.distance_pdf(q, r)
        if g == 0.0:
            return 0.0
        prod = 1.0
        for j, pj in enumerate(points):
            if j == i:
                continue
            prod *= 1.0 - pj.distance_cdf(q, r)
            if prod == 0.0:
                return 0.0
        return g * prod

    # Split at the kink radii of every cdf inside [lo, hi].
    kinks = {lo, hi}
    for p in points:
        for r in (p.dmin(q), p.dmax(q)):
            if lo < r < hi:
                kinks.add(r)
    pts = sorted(kinks)
    total = 0.0
    for a, b in zip(pts, pts[1:]):
        total += adaptive_simpson(integrand, a, b, tol=tol)
    return min(1.0, max(0.0, total))


def continuous_quantification_all(
    points: Sequence, q, tol: float = 1e-8
) -> List[float]:
    """All ``pi_i(q)``; only the nonzero NNs are integrated."""
    uset = UncertainSet(points)
    nonzero = uset.nonzero_nn(q)
    return [
        continuous_quantification(points, q, i, tol=tol) if i in nonzero else 0.0
        for i in range(len(points))
    ]
