"""Quantification probabilities for continuous distributions (Eq. 1).

    ``pi_i(q) = integral over r of g_{q,i}(r) * prod_{j != i} (1 - G_{q,j}(r))``

The paper notes exact evaluation "requires complex n-dimensional
integration"; with the per-point distance cdfs available the integral is
one-dimensional, and this module evaluates it by adaptive Simpson
quadrature split at the cdf kink radii.  It is the ground-truth baseline
for the Monte-Carlo structure (Section 4.2) and corresponds to the
numeric-integration approach of [CKP04].

Besides the scalar entry points, :func:`continuous_quantification_many`
evaluates the sweep for a whole query matrix (sharing one
:class:`~repro.core.nonzero.UncertainSet` and accepting per-query
candidate restrictions); :mod:`repro.core.quant_index` uses it for the
uncertified center estimates of continuous-candidate threshold cells.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..geometry.kernels import as_query_array
from ..quadrature import adaptive_simpson
from .nonzero import UncertainSet


def _pi_by_quadrature(uset: UncertainSet, q, i: int, tol: float) -> float:
    """``pi_i(q)`` for a prebuilt uncertain set (the quadrature core)."""
    points = uset.points
    pi_pt = points[i]
    lo = pi_pt.dmin(q)
    hi = pi_pt.dmax(q)
    if hi <= lo:
        hi = lo + 1e-12
    # Integration can stop once some other point is certainly closer.
    cutoff = min(p.dmax(q) for j, p in enumerate(points) if j != i) if len(
        points
    ) > 1 else hi
    hi = min(hi, cutoff)
    if hi <= lo:
        return 0.0

    def integrand(r: float) -> float:
        g = pi_pt.distance_pdf(q, r)
        if g == 0.0:
            return 0.0
        prod = 1.0
        for j, pj in enumerate(points):
            if j == i:
                continue
            prod *= 1.0 - pj.distance_cdf(q, r)
            if prod == 0.0:
                return 0.0
        return g * prod

    # Split at the kink radii of every cdf inside [lo, hi].
    kinks = {lo, hi}
    for p in points:
        for r in (p.dmin(q), p.dmax(q)):
            if lo < r < hi:
                kinks.add(r)
    pts = sorted(kinks)
    total = 0.0
    for a, b in zip(pts, pts[1:]):
        total += adaptive_simpson(integrand, a, b, tol=tol)
    return min(1.0, max(0.0, total))


def continuous_quantification(
    points: Sequence,
    q,
    i: int,
    tol: float = 1e-8,
) -> float:
    """``pi_i(q)`` by quadrature of Eq. (1)."""
    return _pi_by_quadrature(UncertainSet(points), q, i, tol)


def continuous_quantification_all(
    points: Sequence, q, tol: float = 1e-8
) -> List[float]:
    """All ``pi_i(q)``; only the nonzero NNs are integrated."""
    uset = UncertainSet(points)
    nonzero = uset.nonzero_nn(q)
    return [
        _pi_by_quadrature(uset, q, i, tol) if i in nonzero else 0.0
        for i in range(len(points))
    ]


def continuous_quantification_many(
    points: Sequence,
    qs,
    tol: float = 1e-8,
    candidates: Optional[Sequence[Sequence[int]]] = None,
) -> np.ndarray:
    """``pi_i(q)`` for every query/point pair, shape ``(m, n)``.

    The batch-capable sweep: the :class:`UncertainSet` (and its Lemma
    2.1 machinery) is built once and reused across all rows.  With
    ``candidates`` given (one index sequence per query), only those
    points are integrated for that row — safe whenever each row's
    sequence is a superset of ``NN!=0(q)``, since every other point has
    ``pi_i(q) = 0``; the per-point integrands still see the full set,
    so the returned probabilities equal the unrestricted sweep.
    """
    uset = UncertainSet(points)
    Q = as_query_array(qs)
    if candidates is not None and len(candidates) != Q.shape[0]:
        raise ValueError("candidates must provide one sequence per query")
    n = len(points)
    out = np.zeros((Q.shape[0], n), dtype=np.float64)
    for row in range(Q.shape[0]):
        q = (float(Q[row, 0]), float(Q[row, 1]))
        nonzero = uset.nonzero_nn(q)
        scan = (
            nonzero
            if candidates is None
            else [int(i) for i in candidates[row] if i in nonzero]
        )
        for i in scan:
            out[row, i] = _pi_by_quadrature(uset, q, i, tol)
    return out
