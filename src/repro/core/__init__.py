"""The paper's contribution: nonzero Voronoi diagrams, NN!=0 indexes,
and quantification-probability structures."""

from .baselines import BranchAndPruneIndex, LinearScanIndex
from .census import CensusResult, Vertex, nonzero_voronoi_census
from .continuous_quant import (
    continuous_quantification,
    continuous_quantification_all,
    continuous_quantification_many,
)
from .discrete_voronoi import (
    DiscreteNonzeroVoronoi,
    discrete_gamma_census,
    gamma_polygon_edges,
    k_cell,
)
from .dual_tree import (
    DualTreeCandidates,
    EnvelopeObjectTree,
    QueryBlockTree,
    dual_tree_candidates,
)
from .expected_nn import ExpectedNNIndex, disagreement_rate
from .gamma import GammaCurve, disks_of, gamma_curves
from .guaranteed import (
    guaranteed_area_estimate,
    guaranteed_owner,
    is_guaranteed,
)
from .knn import (
    expected_knn,
    expected_knn_many,
    knn_probabilities,
    monte_carlo_knn,
    monte_carlo_knn_many,
)
from .monte_carlo import (
    MonteCarloPNN,
    rounds_for_all_queries,
    rounds_for_fixed_query,
)
from .nonzero import UncertainSet, brute_force_nonzero, nonzero_from_matrices
from .parallel import map_ordered, map_tiles, tile_ranges
from .planner import QueryPlanner
from .quant_index import (
    ApproxNN,
    ApproxSets,
    ApproxThreshold,
    QuantizedEnvelopeIndex,
)
from .nonzero_index import (
    DiscreteTwoStageIndex,
    DiskNonzeroIndex,
    GenericNonzeroIndex,
)
from .nonzero_voronoi import NonzeroVoronoiDiagram
from .prob_voronoi import ProbabilisticVoronoiDiagram
from .quantification import (
    nonzero_quantifications,
    quantification_naive,
    quantification_probabilities,
    sweep_quantification,
)
from .rectilinear import (
    ChebyshevNonzeroIndex,
    ManhattanNonzeroIndex,
    chebyshev_nonzero_nn,
    manhattan_nonzero_nn,
)
from .threshold import (
    ApproxThresholdIndex,
    ThresholdAnswer,
    threshold_nn_exact,
    threshold_nn_exact_many,
    topk_probable_nn_exact,
)
from .spiral import (
    SpiralSearchPNN,
    adversarial_instance,
    retrieval_size,
    spread,
    weight_threshold_estimate,
)
from .subdivision_index import PersistentNonzeroIndex

__all__ = [
    "ApproxNN",
    "DualTreeCandidates",
    "EnvelopeObjectTree",
    "QueryBlockTree",
    "dual_tree_candidates",
    "map_ordered",
    "ApproxSets",
    "ApproxThreshold",
    "ApproxThresholdIndex",
    "BranchAndPruneIndex",
    "CensusResult",
    "ChebyshevNonzeroIndex",
    "ManhattanNonzeroIndex",
    "ThresholdAnswer",
    "chebyshev_nonzero_nn",
    "manhattan_nonzero_nn",
    "threshold_nn_exact",
    "topk_probable_nn_exact",
    "DiscreteNonzeroVoronoi",
    "DiscreteTwoStageIndex",
    "DiskNonzeroIndex",
    "ExpectedNNIndex",
    "GammaCurve",
    "GenericNonzeroIndex",
    "LinearScanIndex",
    "MonteCarloPNN",
    "NonzeroVoronoiDiagram",
    "PersistentNonzeroIndex",
    "ProbabilisticVoronoiDiagram",
    "QuantizedEnvelopeIndex",
    "QueryPlanner",
    "map_tiles",
    "nonzero_from_matrices",
    "tile_ranges",
    "SpiralSearchPNN",
    "UncertainSet",
    "Vertex",
    "adversarial_instance",
    "brute_force_nonzero",
    "continuous_quantification",
    "continuous_quantification_all",
    "continuous_quantification_many",
    "disagreement_rate",
    "discrete_gamma_census",
    "disks_of",
    "expected_knn",
    "expected_knn_many",
    "gamma_curves",
    "knn_probabilities",
    "monte_carlo_knn",
    "monte_carlo_knn_many",
    "gamma_polygon_edges",
    "guaranteed_area_estimate",
    "guaranteed_owner",
    "is_guaranteed",
    "k_cell",
    "nonzero_quantifications",
    "nonzero_voronoi_census",
    "quantification_naive",
    "quantification_probabilities",
    "retrieval_size",
    "rounds_for_all_queries",
    "rounds_for_fixed_query",
    "spread",
    "sweep_quantification",
    "threshold_nn_exact_many",
    "weight_threshold_estimate",
]
