"""Exact quantification probabilities for discrete distributions (Eq. 2).

For a query ``q``,

    ``pi_i(q) = sum over locations p_is of
                w_is * prod_{j != i} (1 - G_{q,j}(d(p_is, q)))``

with ``G_{q,j}(r)`` the total weight of ``P_j``'s locations within
(closed) distance ``r``.  A single sweep over the ``N = nk`` locations in
distance order maintains the running product across all ``j`` in
log-space (zero factors tracked separately), giving all probabilities in
``O(N log N)`` — the quantity the probabilistic Voronoi diagram of
Section 4.1 tabulates per cell.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..errors import QueryError
from .nonzero import UncertainSet

#: Factors below this threshold are treated as exactly zero (a point
#: whose whole distribution lies within the current radius).
_ZERO = 1e-15

Entry = Tuple[float, int, float]  # (distance, owner index, weight)


def sweep_quantification(entries: Sequence[Entry], n: int) -> List[float]:
    """Evaluate Eq. (2) over explicit ``(distance, owner, weight)`` entries.

    ``entries`` need not have per-owner weights summing to one — the
    spiral-search truncation of Section 4.3 reuses this sweep on a
    partial location set (Eq. (10)/(11)).

    Ties in distance are handled per Eq. (2)'s closed inequality: all
    entries at distance exactly ``r`` contribute to every ``G_j(r)``.
    """
    order = sorted(entries)
    pi = [0.0] * n
    G = [0.0] * n  # accumulated weight per owner
    log_sum = 0.0  # sum of log(1 - G_j) over owners with positive factor
    zeros = 0  # number of owners with factor 0
    m = len(order)
    pos = 0
    while pos < m:
        # Group of equal distances.
        end = pos
        r = order[pos][0]
        while end < m and order[end][0] == r:
            end += 1
        group = order[pos:end]
        # Update every owner's cdf first (ties included in G, Eq. (2)).
        for _, i, w in group:
            old = 1.0 - G[i]
            if old > _ZERO:
                log_sum -= math.log(old)
            else:
                zeros -= 1
            G[i] += w
            new = 1.0 - G[i]
            if new > _ZERO:
                log_sum += math.log(new)
            else:
                zeros += 1
        # Now credit each group entry with prod_{j != i} (1 - G_j(r)).
        for _, i, w in group:
            fi = 1.0 - G[i]
            if zeros == 0:
                prod_others = math.exp(log_sum - math.log(fi))
            elif zeros == 1 and fi <= _ZERO:
                prod_others = math.exp(log_sum)
            else:
                prod_others = 0.0
            pi[i] += w * prod_others
        pos = end
    return pi


def entries_for_query(points: Sequence, q) -> List[Entry]:
    """Flatten discrete uncertain points into sweep entries for ``q``."""
    qx, qy = q[0], q[1]
    entries: List[Entry] = []
    for i, p in enumerate(points):
        if not p.is_discrete:
            raise QueryError(
                "exact quantification requires discrete distributions; "
                "use MonteCarloPNN or continuous_quantification instead"
            )
        for (px, py), w in zip(p.locations, p.weights):
            entries.append((math.hypot(px - qx, py - qy), i, w))
    return entries


def quantification_probabilities(points: Sequence, q) -> List[float]:
    """All ``pi_i(q)`` exactly, via the sorted sweep (Eq. (2))."""
    return sweep_quantification(entries_for_query(points, q), len(points))


def quantification_naive(points: Sequence, q) -> List[float]:
    """O(N^2) literal evaluation of Eq. (2); the test oracle."""
    n = len(points)
    qx, qy = q[0], q[1]
    pi = [0.0] * n
    for i, p in enumerate(points):
        for (px, py), w in zip(p.locations, p.weights):
            r = math.hypot(px - qx, py - qy)
            prod = 1.0
            for j, pj in enumerate(points):
                if j == i:
                    continue
                prod *= 1.0 - pj.distance_cdf(q, r)
                if prod == 0.0:
                    break
            pi[i] += w * prod
    return pi


def nonzero_quantifications(points: Sequence, q, min_value: float = 0.0) -> Dict[int, float]:
    """The PNN answer: ``{ i : pi_i(q) }`` restricted to positive values."""
    pi = quantification_probabilities(points, q)
    return {i: v for i, v in enumerate(pi) if v > min_value}
