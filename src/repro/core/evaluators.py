"""Tag-grouped survivor evaluation (the output-sensitive evaluation path).

BENCH_pr5 measured the honest gap left after dual-tree candidate
generation: pruning is output-sensitive, but the planner still walked
each batch's CSR survivor sets with one Python ``*_many`` dispatch per
surviving *object*.  This module makes the evaluation side
output-sensitive too:

* the survivor CSR is flattened into parallel ``(query_row, object)``
  **pair arrays**, stable-partitioned by ``ModelColumns.tags``
  (:meth:`~repro.uncertain.ModelColumns.tag_groups`);
* each model family present gets ONE vectorized kernel call for the
  whole pair group (chunked only by the ``config.EXECUTION.tile_bytes``
  working-set budget), reading every model parameter from the
  registry-owned :class:`EvalCache` instead of Python objects;
* results scatter back into per-query reductions (min / k-th / set
  tests) in the planner.

Bit-identity contract
---------------------
Every float64 kernel here replays the corresponding model's batch-method
float sequence **operation for operation** (the models document their
row-independence: elementwise kernels plus per-row multiply-and-sum
reductions over fixed-length contiguous axes).  A (query, object) pair
therefore produces the same double whether it is evaluated through the
per-object path or through any grouping/chunking of the pair arrays —
the planner's ``evaluator="object"`` escape hatch exists precisely to
assert this in tests and benchmarks.  Two consequences shape the code:

* discrete / histogram pairs are **sub-grouped by description
  complexity** (location count / cell count) so their per-row reductions
  run over ``(pairs, k)`` stacked arrays with ``.sum(axis=1)`` — NumPy's
  pairwise summation depends on the reduced axis length, so mixing
  complexities in one ragged reduction would change the floats;
* polygon (no vectorized cdf exists) and unknown models fall back to
  one batched ``expected_distance_many`` call per distinct *object* in
  the group — the identical call the per-object path makes.

Float32 mode
------------
``use_float32=True`` runs the expected-distance kernels in single
precision and returns a certified per-pair error bound (float64).  The
bounds are deliberately conservative: quadrature kernels whose cdfs pass
through ``arccos`` lose up to ``O(sqrt(eps32))`` absolute accuracy where
the query circle grazes a support feature (the derivative of ``arccos``
is unbounded at ±1), so their certificate is
``4 sqrt(eps32) (hi - lo) + 64 eps32 hi``; the arithmetic-only discrete
kernel is certified at ``64 eps32 E``.  Pairs that evaluate through the
per-object fallback run in float64 and carry a zero bound.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EXECUTION
from ..errors import QueryError
from ..geometry import kernels
from .. import resilience as _resilience
from ..uncertain.columns import (
    TAG_DISCRETE,
    TAG_DISK,
    TAG_GAUSSIAN,
    TAG_HISTOGRAM,
    TAG_NAMES,
    TAG_POLYGON,
    TAG_RECT,
    ModelColumns,
)

__all__ = [
    "EvalCache",
    "expected_distance_pairs",
    "support_bounds_pairs",
    "min_reduce_csr",
    "max_reduce_csr",
    "gather_sweep_entries",
]

#: Quadrature layout of the base ``expected_distance_many`` (16 panels of
#: 16 Gauss–Legendre nodes) and of the gaussian cdf (8 panels of 16).
_PANELS, _ORDER = 16, 16
_GAUSS_PANELS, _GAUSS_ORDER = 8, 16
_NODES = _PANELS * _ORDER

#: Certified float32 error-bound coefficients (see module docstring).
_EPS32 = float(np.finfo(np.float32).eps)
_SQRT_EPS32 = math.sqrt(_EPS32)
_F32_SQRT_COEFF = 4.0
_F32_LIN_COEFF = 64.0

#: Peak simultaneous float64 working-set bytes per pair in each grouped
#: kernel (node grid × live temporaries); pair batches are chunked so a
#: chunk's working set stays within ``config.EXECUTION.tile_bytes``.
#: Chunking never changes results — every kernel is row-independent.
_BYTES_DISK = _NODES * 8 * 12
_BYTES_RECT = _NODES * 8 * 18
_BYTES_GAUSS = _NODES * _GAUSS_PANELS * _GAUSS_ORDER * 8 * 8


def _chunk(total: int, bytes_per_pair: int) -> range:
    step = max(1, int(EXECUTION.tile_bytes) // max(int(bytes_per_pair), 1))
    return range(0, total, step)


def _chunks(total: int, bytes_per_pair: int):
    """Budget-sized pair-batch slices, each behind a resilience
    checkpoint (site ``"evaluators.chunk"``)."""
    r = _chunk(total, bytes_per_pair)
    for ci, s in enumerate(r):
        _resilience.checkpoint("evaluators.chunk", ci)
        yield slice(s, min(s + r.step, total))


class EvalCache:
    """Registry-owned precomputations behind the tag-grouped kernels.

    Built once per engine generation (keyed ``("eval_cache",)`` like the
    dual tree) and reused across queries, batches, and criteria:

    * shared Gauss–Legendre node grids (writable copies of the cached
      read-only rules, so the compiled backend can take them directly);
    * per-disk areas, per-gaussian truncation masses, per-rect areas —
      the scalars the model cdfs fold in;
    * discrete location stacks grouped by description complexity ``k``
      (``(group, k, 2)`` / ``(group, k)`` arrays plus dense object →
      (group, row) lookups);
    * histogram cell-rectangle / mass stacks grouped by cell count, with
      per-object cell areas;
    * the live point list, for the polygon / unknown-model fallback.

    ``hits`` counts grouped kernel invocations served after construction
    and ``builds`` the constructions (1 per instance — the registry's
    per-generation reuse is what turns repeated batches into hits);
    ``pair_counts`` histograms evaluated pairs by model-tag name.
    """

    def __init__(self, points: Sequence, columns: ModelColumns):
        self.points = list(points)
        self.columns = columns
        self.hits = 0
        self.builds = 1
        self.pair_counts: Dict[str, int] = {}
        n = columns.n
        tags = columns.tags
        nodes, weights = kernels.gauss_legendre_nodes(_PANELS, _ORDER)
        self.nodes = nodes.copy()
        self.weights = weights.copy()
        gnodes, gweights = kernels.gauss_legendre_nodes(
            _GAUSS_PANELS, _GAUSS_ORDER
        )
        self.gnodes = gnodes.copy()
        self.gweights = gweights.copy()

        self.disk_area: Optional[np.ndarray] = None
        ids = np.flatnonzero(tags == TAG_DISK)
        if ids.size:
            area = np.full(n, np.nan)
            r = columns.radii[ids]
            # Same product order as Circle.area(): (pi * r) * r.
            area[ids] = np.pi * r * r
            self.disk_area = area

        self.gauss_mass: Optional[np.ndarray] = None
        ids = np.flatnonzero(tags == TAG_GAUSSIAN)
        if ids.size:
            mass = np.full(n, np.nan)
            for i in ids:
                mass[i] = self.points[i]._mass
            self.gauss_mass = mass

        self.rect_area: Optional[np.ndarray] = None
        ids = np.flatnonzero(tags == TAG_RECT)
        if ids.size:
            area = np.full(n, np.nan)
            for i in ids:
                area[i] = self.points[i]._area
            self.rect_area = area

        # Discrete stacks, sub-grouped by location count k.
        self.disc_group = np.full(n, -1, dtype=np.intp)
        self.disc_row = np.full(n, -1, dtype=np.intp)
        self.disc_locs: Dict[int, np.ndarray] = {}
        self.disc_w: Dict[int, np.ndarray] = {}
        ids = np.flatnonzero(tags == TAG_DISCRETE)
        if ids.size:
            counts = np.diff(columns.loc_offsets)[ids]
            for k in np.unique(counts):
                members = ids[counts == k]
                gather, _ = kernels.csr_segment_gather(
                    columns.loc_offsets, members
                )
                k = int(k)
                g = members.shape[0]
                self.disc_locs[k] = columns.locations[gather].reshape(g, k, 2)
                self.disc_w[k] = columns.location_weights[gather].reshape(g, k)
                self.disc_group[members] = k
                self.disc_row[members] = np.arange(g, dtype=np.intp)

        # Histogram stacks, sub-grouped by (nonzero) cell count.
        self.hist_group = np.full(n, -1, dtype=np.intp)
        self.hist_row = np.full(n, -1, dtype=np.intp)
        self.hist_rects: Dict[int, np.ndarray] = {}
        self.hist_mass: Dict[int, np.ndarray] = {}
        self.hist_area: Dict[int, np.ndarray] = {}
        ids = np.flatnonzero(tags == TAG_HISTOGRAM)
        if ids.size:
            ncells = np.asarray(
                [self.points[i]._mass_arr.shape[0] for i in ids], dtype=np.intp
            )
            for c in np.unique(ncells):
                members = ids[ncells == c]
                c = int(c)
                self.hist_rects[c] = np.stack(
                    [self.points[i]._rect_arr for i in members]
                )
                self.hist_mass[c] = np.stack(
                    [self.points[i]._mass_arr for i in members]
                )
                self.hist_area[c] = np.asarray(
                    [self.points[i]._area for i in members], dtype=np.float64
                )
                self.hist_group[members] = c
                self.hist_row[members] = np.arange(
                    members.shape[0], dtype=np.intp
                )

    # -- introspection -----------------------------------------------------
    @property
    def nbytes(self) -> int:
        total = (
            self.nodes.nbytes
            + self.weights.nbytes
            + self.gnodes.nbytes
            + self.gweights.nbytes
            + self.disc_group.nbytes
            + self.disc_row.nbytes
            + self.hist_group.nbytes
            + self.hist_row.nbytes
        )
        for arr in (self.disk_area, self.gauss_mass, self.rect_area):
            if arr is not None:
                total += arr.nbytes
        for d in (
            self.disc_locs,
            self.disc_w,
            self.hist_rects,
            self.hist_mass,
            self.hist_area,
        ):
            total += sum(a.nbytes for a in d.values())
        return int(total)

    def note_pairs(self, tag: int, count: int) -> None:
        name = TAG_NAMES.get(int(tag), "other")
        self.pair_counts[name] = self.pair_counts.get(name, 0) + int(count)


# -- float32 helpers ---------------------------------------------------------

def _quad_bound(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Certified |E_f32 - E_f64| bound for the arccos-bearing quadrature
    kernels (disk / rect / gaussian / histogram)."""
    span = np.maximum(hi - lo, 0.0)
    return _F32_SQRT_COEFF * _SQRT_EPS32 * span + _F32_LIN_COEFF * _EPS32 * np.abs(hi)


def _lens_area_pairs(d, R, r2):
    """`kernels.lens_area_many` replayed with the per-pair constants kept
    as ``(p, 1)`` broadcasts along the node axis.

    Every op is elementwise, so the floats are positionally identical to
    the flat ``np.repeat`` layout the models use -- but the staging copies,
    boolean gathers and the scatter of the partial branch disappear.  The
    partial-branch formula runs on the full array (garbage at non-partial
    positions is discarded by the final ``where``), which is cheaper than
    three gathers plus a scatter at typical partial fractions.  Dtype
    generic: the float32 pipeline reuses it on down-cast inputs.
    """
    d_b = d[:, None]
    r2_b = r2[:, None]
    rmin = np.minimum(R, r2_b)
    full = np.pi * rmin * rmin
    # The denominator-underflow product form is load-bearing: centers a
    # subnormal apart must land in the contained branch (see the scalar
    # lens_area).
    degenerate = 2.0 * d_b * rmin == 0.0
    absdiff = np.abs(R - r2_b)
    rsum = R + r2_b
    contained = (d_b <= absdiff) | ((d_b < rsum) & degenerate)
    # (d < rsum) & ~contained == (d < rsum) & (d > absdiff) & ~degenerate:
    # the two contained clauses knock out exactly the d <= absdiff and
    # degenerate cases.
    partial = (d_b < rsum) & ~contained
    # Per-pair constants stay (p, 1); the alpha/beta chains run in place
    # (same float sequence, a fraction of the temporaries).
    d2 = d_b * d_b
    R2 = R * R
    b2 = r2_b * r2_b
    # over=: subnormal denominators at discarded non-partial positions
    # can overflow the division; the partial branch itself never does.
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        alpha = d2 + R2
        alpha -= b2
        alpha /= 2.0 * d_b * R
        np.clip(alpha, -1.0, 1.0, out=alpha)
        np.arccos(alpha, out=alpha)
        s = 2.0 * alpha
        np.sin(s, out=s)
        s /= 2.0
        alpha -= s
        alpha *= R2
        beta = (d2 + b2) - R2
        beta /= (2.0 * d_b) * r2_b
        np.clip(beta, -1.0, 1.0, out=beta)
        np.arccos(beta, out=beta)
        np.multiply(2.0, beta, out=s)
        np.sin(s, out=s)
        s /= 2.0
        beta -= s
        beta *= b2
        alpha += beta
    out = np.where(partial, alpha, np.where(contained, full, 0.0))
    return out.astype(R.dtype, copy=False)


def _corner_area_local(x, y, r):
    """`kernels.disk_halfplane_corner_area` without the float64 cast."""
    x = np.clip(x, -r, r)
    yc = np.clip(y, -r, r)
    cy = np.sqrt(np.maximum(r * r - yc * yc, 0.0))

    def F(u):
        u = np.clip(u, -r, r)
        return 0.5 * (
            u * np.sqrt(np.maximum(r * r - u * u, 0.0))
            + r * r * np.arcsin(
                np.divide(u, r, out=np.zeros_like(u), where=r > 0.0)
            )
        )

    b2 = np.clip(x, -cy, cy)
    mid = yc * (b2 + cy) + F(b2) - F(-cy)
    b1 = np.clip(x, -r, -cy)
    b3 = np.clip(x, cy, r)
    outer = 2.0 * (F(b1) - F(-r)) + 2.0 * (F(b3) - F(cy))
    return np.where(yc >= 0.0, mid + outer, mid)


# -- per-tag expected-distance kernels ---------------------------------------
#
# Every float64 branch replays the corresponding model batch method's
# float sequence op for op (see the module docstring); float32 branches
# run the same sequence on down-cast inputs.

def _expected_disk(cache, qx, qy, sub, f32):
    centers = cache.columns.centers[sub]
    cx, cy = centers[:, 0], centers[:, 1]
    radius = cache.columns.radii[sub]
    area = cache.disk_area[sub]
    nodes, weights = cache.nodes, cache.weights
    if not f32 and kernels.active_backend() == "numba":
        from ..geometry import _compiled

        v = _compiled.disk_expected_pairs(
            np.ascontiguousarray(qx),
            np.ascontiguousarray(qy),
            np.ascontiguousarray(cx),
            np.ascontiguousarray(cy),
            np.ascontiguousarray(radius),
            np.ascontiguousarray(area),
            nodes,
            weights,
        )
        return v, None
    bounds = None
    if f32:
        d64 = np.hypot(qx - cx, qy - cy)
        bounds = _quad_bound(
            np.maximum(d64 - radius, 0.0), d64 + radius
        )
        dt = np.float32
        qx, cx = qx.astype(dt), cx.astype(dt)
        qy, cy = qy.astype(dt), cy.astype(dt)
        radius = radius.astype(dt)
        area = area.astype(dt)
        nodes = nodes.astype(dt)
        weights = weights.astype(dt)
    d = np.hypot(qx - cx, qy - cy)
    lo = np.maximum(d - radius, 0.0)
    hi = d + radius
    p = sub.shape[0]
    out = np.empty(p, dtype=np.float64)
    for sl in _chunks(p, _BYTES_DISK):
        lo_s = lo[sl]
        span = np.maximum(hi[sl] - lo_s, 0.0)
        R = lo_s[:, None] + span[:, None] * nodes[None, :]
        lens = _lens_area_pairs(d[sl], R, radius[sl])
        G = np.where(R > 0.0, lens / area[sl][:, None], 0.0)
        vals = 1.0 - G
        tail = span * (vals * weights[None, :]).sum(axis=1)
        out[sl] = lo_s + tail
    return out, bounds


def _expected_gaussian(cache, qx, qy, sub, f32):
    centers = cache.columns.centers[sub]
    cx, cy = centers[:, 0], centers[:, 1]
    cutoff = cache.columns.radii[sub]
    sigma = cache.columns.sigmas[sub]
    mass = cache.gauss_mass[sub]
    nodes, weights = cache.nodes, cache.weights
    gnodes, gweights = cache.gnodes, cache.gweights
    bounds = None
    if f32:
        d64 = np.hypot(qx - cx, qy - cy)
        bounds = _quad_bound(np.maximum(d64 - cutoff, 0.0), d64 + cutoff)
        dt = np.float32
        qx, cx = qx.astype(dt), cx.astype(dt)
        qy, cy = qy.astype(dt), cy.astype(dt)
        cutoff, sigma, mass = (
            cutoff.astype(dt),
            sigma.astype(dt),
            mass.astype(dt),
        )
        nodes, weights = nodes.astype(dt), weights.astype(dt)
        gnodes, gweights = gnodes.astype(dt), gweights.astype(dt)
    d = np.hypot(qx - cx, qy - cy)
    lo = np.maximum(d - cutoff, 0.0)
    hi = d + cutoff
    p = sub.shape[0]
    out = np.empty(p, dtype=np.float64)
    for sl in _chunks(p, _BYTES_GAUSS):
        lo_s = lo[sl]
        span_t = np.maximum(hi[sl] - lo_s, 0.0)
        R = lo_s[:, None] + span_t[:, None] * nodes[None, :]
        d_f = np.repeat(d[sl], _NODES)
        sig = np.repeat(sigma[sl], _NODES)
        cut = np.repeat(cutoff[sl], _NODES)
        ms = np.repeat(mass[sl], _NODES)
        rr = R.reshape(-1).copy()
        rr[rr < 0.0] = 0.0
        # Full-coverage term (closed-form truncated-Rayleigh cdf), then
        # the partial-ring angular quadrature — the exact op sequence of
        # TruncatedGaussianPoint.distance_cdf_many.
        s0 = np.clip(np.clip(rr - d_f, 0.0, cut), 0.0, cut)
        total = -np.expm1(-0.5 * (s0 / sig) ** 2) / ms
        a = np.clip(np.abs(d_f - rr), 0.0, cut)
        b = np.clip(d_f + rr, 0.0, cut)
        span_g = np.maximum(b - a, 0.0)
        active = (span_g > 0.0) & (rr > 0.0)
        if np.any(active):
            da = d_f[active][:, None]
            ra = rr[active][:, None]
            S = a[active][:, None] + span_g[active][:, None] * gnodes[None, :]
            sg = sig[active][:, None]
            msk = ms[active][:, None]
            pdf = S / (sg * sg) * np.exp(-0.5 * (S / sg) ** 2) / msk
            denom = 2.0 * da * S
            cos_half = np.divide(
                da * da + S * S - ra * ra,
                denom,
                out=np.ones_like(S),
                where=denom > 0.0,
            )
            frac = np.arccos(np.clip(cos_half, -1.0, 1.0)) / np.pi
            frac = np.where(S + da <= ra, 1.0, frac)
            frac = np.where(np.abs(da - S) >= ra, 0.0, frac)
            total[active] += span_g[active] * (
                pdf * frac * gweights[None, :]
            ).sum(axis=1)
        G = np.clip(total, 0.0, 1.0)
        G[rr >= d_f + cut] = 1.0
        G[rr <= np.maximum(d_f - cut, 0.0)] = 0.0
        vals = (1.0 - G).reshape(-1, _NODES)
        tail = span_t * (vals * weights[None, :]).sum(axis=1)
        out[sl] = lo_s + tail
    return out, bounds


def _expected_rect(cache, qx, qy, sub, f32):
    b = cache.columns.bboxes[sub]
    area = cache.rect_area[sub]
    nodes, weights = cache.nodes, cache.weights
    bounds = None
    if f32:
        dxm = np.maximum(np.maximum(b[:, 0] - qx, 0.0), qx - b[:, 2])
        dym = np.maximum(np.maximum(b[:, 1] - qy, 0.0), qy - b[:, 3])
        dxM = np.maximum(np.abs(qx - b[:, 0]), np.abs(qx - b[:, 2]))
        dyM = np.maximum(np.abs(qy - b[:, 1]), np.abs(qy - b[:, 3]))
        bounds = _quad_bound(np.hypot(dxm, dym), np.hypot(dxM, dyM))
        dt = np.float32
        qx, qy = qx.astype(dt), qy.astype(dt)
        b = b.astype(dt)
        area = area.astype(dt)
        nodes, weights = nodes.astype(dt), weights.astype(dt)
    dxm = np.maximum(np.maximum(b[:, 0] - qx, 0.0), qx - b[:, 2])
    dym = np.maximum(np.maximum(b[:, 1] - qy, 0.0), qy - b[:, 3])
    lo = np.hypot(dxm, dym)
    dxM = np.maximum(np.abs(qx - b[:, 0]), np.abs(qx - b[:, 2]))
    dyM = np.maximum(np.abs(qy - b[:, 1]), np.abs(qy - b[:, 3]))
    hi = np.hypot(dxM, dyM)
    corner = _corner_area_local if f32 else kernels.disk_halfplane_corner_area
    p = sub.shape[0]
    out = np.empty(p, dtype=np.float64)
    for sl in _chunks(p, _BYTES_RECT):
        lo_s = lo[sl]
        span = np.maximum(hi[sl] - lo_s, 0.0)
        R = lo_s[:, None] + span[:, None] * nodes[None, :]
        rr = R.ravel()
        qx_f = np.repeat(qx[sl], _NODES)
        qy_f = np.repeat(qy[sl], _NODES)
        b_f = np.repeat(b[sl], _NODES, axis=0)
        x0 = b_f[:, 0] - qx_f
        y0 = b_f[:, 1] - qy_f
        x1 = b_f[:, 2] - qx_f
        y1 = b_f[:, 3] - qy_f
        area_g = (
            corner(x1, y1, rr)
            - corner(x0, y1, rr)
            - corner(x1, y0, rr)
            + corner(x0, y0, rr)
        )
        area_g = np.maximum(area_g, 0.0)
        area_f = np.repeat(area[sl], _NODES)
        G = np.where(rr > 0.0, np.clip(area_g / area_f, 0.0, 1.0), 0.0)
        vals = (1.0 - G).reshape(-1, _NODES)
        tail = span * (vals * weights[None, :]).sum(axis=1)
        out[sl] = lo_s + tail
    return out, bounds


def _expected_discrete(cache, qx, qy, sub, f32):
    p = sub.shape[0]
    out = np.empty(p, dtype=np.float64)
    bounds = np.zeros(p, dtype=np.float64) if f32 else None
    groups = cache.disc_group[sub]
    for k in np.unique(groups):
        gsel = np.flatnonzero(groups == k)
        L = cache.disc_locs[int(k)][cache.disc_row[sub[gsel]]]
        W = cache.disc_w[int(k)][cache.disc_row[sub[gsel]]]
        gqx, gqy = qx[gsel], qy[gsel]
        if f32:
            dt = np.float32
            L, W = L.astype(dt), W.astype(dt)
            gqx, gqy = gqx.astype(dt), gqy.astype(dt)
        for sl in _chunks(gsel.shape[0], int(k) * 8 * 6):
            dx = gqx[sl][:, None] - L[sl, :, 0]
            dy = gqy[sl][:, None] - L[sl, :, 1]
            D = np.sqrt(dx * dx + dy * dy)
            E = (D * W[sl]).sum(axis=1)
            out[gsel[sl]] = E
            if f32:
                bounds[gsel[sl]] = _F32_LIN_COEFF * _EPS32 * np.abs(
                    E.astype(np.float64)
                )
    return out, bounds


def _expected_histogram(cache, qx, qy, sub, f32):
    p = sub.shape[0]
    out = np.empty(p, dtype=np.float64)
    bounds = np.zeros(p, dtype=np.float64) if f32 else None
    nodes, weights = cache.nodes, cache.weights
    corner = _corner_area_local if f32 else kernels.disk_halfplane_corner_area
    groups = cache.hist_group[sub]
    for c in np.unique(groups):
        gsel = np.flatnonzero(groups == c)
        rows_in_stack = cache.hist_row[sub[gsel]]
        B = cache.hist_rects[int(c)][rows_in_stack]
        M = cache.hist_mass[int(c)][rows_in_stack]
        A = cache.hist_area[int(c)][rows_in_stack]
        gqx, gqy = qx[gsel], qy[gsel]
        # Support bounds (always float64 — shared with the f32 bound).
        dxm = np.maximum(
            np.maximum(B[:, :, 0] - gqx[:, None], 0.0), gqx[:, None] - B[:, :, 2]
        )
        dym = np.maximum(
            np.maximum(B[:, :, 1] - gqy[:, None], 0.0), gqy[:, None] - B[:, :, 3]
        )
        lo = np.hypot(dxm, dym).min(axis=1)
        dxM = np.maximum(
            np.abs(gqx[:, None] - B[:, :, 0]), np.abs(gqx[:, None] - B[:, :, 2])
        )
        dyM = np.maximum(
            np.abs(gqy[:, None] - B[:, :, 1]), np.abs(gqy[:, None] - B[:, :, 3])
        )
        hi = np.hypot(dxM, dyM).max(axis=1)
        nd, wt = nodes, weights
        if f32:
            bounds[gsel] = _quad_bound(lo, hi)
            dt = np.float32
            B, M, A = B.astype(dt), M.astype(dt), A.astype(dt)
            gqx, gqy = gqx.astype(dt), gqy.astype(dt)
            lo, hi = lo.astype(dt), hi.astype(dt)
            nd, wt = nodes.astype(dt), weights.astype(dt)
        g = gsel.shape[0]
        for sl in _chunks(g, _NODES * int(c) * 8 * 16):
            lo_s = lo[sl]
            span = np.maximum(hi[sl] - lo_s, 0.0)
            R = lo_s[:, None] + span[:, None] * nd[None, :]
            rr = R.ravel()
            qx_f = np.repeat(gqx[sl], _NODES)
            qy_f = np.repeat(gqy[sl], _NODES)
            B_f = np.repeat(B[sl], _NODES, axis=0)
            M_f = np.repeat(M[sl], _NODES, axis=0)
            A_f = np.repeat(A[sl], _NODES)
            mind = np.hypot(
                np.maximum(
                    np.maximum(B_f[:, :, 0] - qx_f[:, None], 0.0),
                    qx_f[:, None] - B_f[:, :, 2],
                ),
                np.maximum(
                    np.maximum(B_f[:, :, 1] - qy_f[:, None], 0.0),
                    qy_f[:, None] - B_f[:, :, 3],
                ),
            )
            maxd = np.hypot(
                np.maximum(
                    np.abs(qx_f[:, None] - B_f[:, :, 0]),
                    np.abs(qx_f[:, None] - B_f[:, :, 2]),
                ),
                np.maximum(
                    np.abs(qy_f[:, None] - B_f[:, :, 1]),
                    np.abs(qy_f[:, None] - B_f[:, :, 3]),
                ),
            )
            r2d = rr[:, None]
            full = maxd <= r2d
            partial = (mind <= r2d) & ~full
            total = (full * M_f).sum(axis=1)
            rowsel = np.nonzero(partial.any(axis=1))[0]
            if rowsel.size:
                bs = B_f[rowsel]
                qxs = qx_f[rowsel][:, None]
                qys = qy_f[rowsel][:, None]
                rrs = rr[rowsel][:, None]
                x0 = bs[:, :, 0] - qxs
                y0 = bs[:, :, 1] - qys
                x1 = bs[:, :, 2] - qxs
                y1 = bs[:, :, 3] - qys
                rrb = np.broadcast_to(rrs, x0.shape)
                areas = (
                    corner(x1, y1, rrb)
                    - corner(x0, y1, rrb)
                    - corner(x1, y0, rrb)
                    + corner(x0, y0, rrb)
                )
                areas = np.maximum(areas, 0.0)
                contrib = np.where(
                    partial[rowsel], areas / A_f[rowsel][:, None], 0.0
                )
                total[rowsel] += (contrib * M_f[rowsel]).sum(axis=1)
            G = np.where(rr > 0.0, np.clip(total, 0.0, 1.0), 0.0)
            vals = (1.0 - G).reshape(-1, _NODES)
            tail = span * (vals * wt[None, :]).sum(axis=1)
            out[gsel[sl]] = lo_s + tail
    return out, bounds


def _fallback_groups(sub: np.ndarray):
    """(object id, positions) groups of a pair-column array, one per
    distinct object — the per-object fallback's dispatch order."""
    order = np.argsort(sub, kind="stable")
    s_cols = sub[order]
    uniq, starts = np.unique(s_cols, return_index=True)
    ends = np.append(starts[1:], s_cols.shape[0])
    for g in range(uniq.shape[0]):
        yield int(uniq[g]), order[starts[g] : ends[g]]


def _expected_fallback(cache, Q, rows, sub):
    # Polygon (no vectorized cdf exists) and unknown models: one batched
    # call per distinct object — the identical call (same query subset,
    # same defaults) the per-object path makes, so values match bit for
    # bit and the pair runs in float64 with a zero f32 certificate.
    out = np.empty(sub.shape[0], dtype=np.float64)
    for i, pos in _fallback_groups(sub):
        out[pos] = cache.points[i].expected_distance_many(Q[rows[pos]])
    return out, None


def expected_distance_pairs(
    cache: EvalCache,
    Q: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    use_float32: bool = False,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """``E[d(q, P_i)]`` for flat (query-row, object) pairs.

    ``rows`` / ``cols`` are parallel arrays naming one pair per entry
    (any order; the planner passes CSR order).  Returns
    ``(values, bounds)``: float64 values bit-identical to the per-object
    path, and — only with ``use_float32=True`` — a certified per-pair
    float64 error bound (zero on fallback pairs, which stay float64).
    """
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    p = cols.shape[0]
    values = np.empty(p, dtype=np.float64)
    bounds = np.zeros(p, dtype=np.float64) if use_float32 else None
    if p == 0:
        return values, bounds
    cache.hits += 1
    qx = Q[rows, 0]
    qy = Q[rows, 1]
    for tag, idx in cache.columns.tag_groups(cols):
        sub = cols[idx]
        cache.note_pairs(tag, idx.size)
        if tag == TAG_DISK:
            v, b = _expected_disk(cache, qx[idx], qy[idx], sub, use_float32)
        elif tag == TAG_GAUSSIAN:
            v, b = _expected_gaussian(cache, qx[idx], qy[idx], sub, use_float32)
        elif tag == TAG_RECT:
            v, b = _expected_rect(cache, qx[idx], qy[idx], sub, use_float32)
        elif tag == TAG_DISCRETE:
            v, b = _expected_discrete(cache, qx[idx], qy[idx], sub, use_float32)
        elif tag == TAG_HISTOGRAM:
            v, b = _expected_histogram(cache, qx[idx], qy[idx], sub, use_float32)
        else:
            v, b = _expected_fallback(cache, Q, rows[idx], sub)
        values[idx] = v
        if use_float32 and b is not None:
            bounds[idx] = b
    return values, bounds


# -- support bounds ----------------------------------------------------------

def support_bounds_pairs(
    cache: EvalCache, Q: np.ndarray, rows: np.ndarray, cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(dmin, dmax)`` for flat (query-row, object) pairs, bit-identical
    to the models' ``dmin_many`` / ``dmax_many`` — the grouped feed of
    the nonzero evaluator."""
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    p = cols.shape[0]
    dmin = np.empty(p, dtype=np.float64)
    dmax = np.empty(p, dtype=np.float64)
    if p == 0:
        return dmin, dmax
    cache.hits += 1
    qx = Q[rows, 0]
    qy = Q[rows, 1]
    for tag, idx in cache.columns.tag_groups(cols):
        sub = cols[idx]
        cache.note_pairs(tag, idx.size)
        gqx, gqy = qx[idx], qy[idx]
        if tag in (TAG_DISK, TAG_GAUSSIAN):
            centers = cache.columns.centers[sub]
            radius = cache.columns.radii[sub]
            d = np.hypot(gqx - centers[:, 0], gqy - centers[:, 1])
            dmin[idx] = np.maximum(d - radius, 0.0)
            dmax[idx] = d + radius
        elif tag == TAG_RECT:
            b = cache.columns.bboxes[sub]
            dxm = np.maximum(np.maximum(b[:, 0] - gqx, 0.0), gqx - b[:, 2])
            dym = np.maximum(np.maximum(b[:, 1] - gqy, 0.0), gqy - b[:, 3])
            dmin[idx] = np.hypot(dxm, dym)
            dxM = np.maximum(np.abs(gqx - b[:, 0]), np.abs(gqx - b[:, 2]))
            dyM = np.maximum(np.abs(gqy - b[:, 1]), np.abs(gqy - b[:, 3]))
            dmax[idx] = np.hypot(dxM, dyM)
        elif tag == TAG_DISCRETE:
            groups = cache.disc_group[sub]
            for k in np.unique(groups):
                gsel = np.flatnonzero(groups == k)
                L = cache.disc_locs[int(k)][cache.disc_row[sub[gsel]]]
                dx = gqx[gsel][:, None] - L[:, :, 0]
                dy = gqy[gsel][:, None] - L[:, :, 1]
                d2 = dx * dx + dy * dy
                dmin[idx[gsel]] = np.sqrt(d2.min(axis=1))
                dmax[idx[gsel]] = np.sqrt(d2.max(axis=1))
        elif tag == TAG_HISTOGRAM:
            groups = cache.hist_group[sub]
            for c in np.unique(groups):
                gsel = np.flatnonzero(groups == c)
                B = cache.hist_rects[int(c)][cache.hist_row[sub[gsel]]]
                hqx = gqx[gsel][:, None]
                hqy = gqy[gsel][:, None]
                dxm = np.maximum(np.maximum(B[:, :, 0] - hqx, 0.0), hqx - B[:, :, 2])
                dym = np.maximum(np.maximum(B[:, :, 1] - hqy, 0.0), hqy - B[:, :, 3])
                dmin[idx[gsel]] = np.hypot(dxm, dym).min(axis=1)
                dxM = np.maximum(np.abs(hqx - B[:, :, 0]), np.abs(hqx - B[:, :, 2]))
                dyM = np.maximum(np.abs(hqy - B[:, :, 1]), np.abs(hqy - B[:, :, 3]))
                dmax[idx[gsel]] = np.hypot(dxM, dyM).max(axis=1)
        else:
            for i, pos in _fallback_groups(sub):
                sel = rows[idx[pos]]
                dmin[idx[pos]] = cache.points[i].dmin_many(Q[sel])
                dmax[idx[pos]] = cache.points[i].dmax_many(Q[sel])
    return dmin, dmax


# -- CSR reductions ----------------------------------------------------------

def min_reduce_csr(
    indptr: np.ndarray, cols: np.ndarray, values: np.ndarray, m: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row ``(winner, min value)`` over CSR-ordered pair values.

    Reproduces the per-object fold's tie-breaking exactly: within each
    row the columns ascend, and the fold's strict ``<`` keeps the first
    column attaining the row minimum — here the ``min`` segment
    reduction followed by the first position where the value equals it.
    Empty rows keep ``(0, +inf)``, as the fold's initial state does.
    """
    best = np.full(m, np.inf)
    winners = np.zeros(m, dtype=np.intp)
    counts = np.diff(indptr)
    ne = counts > 0
    if not np.any(ne):
        return winners, best
    starts = indptr[:-1][ne]
    best[ne] = np.minimum.reduceat(values, starts)
    rows = kernels.csr_rows(indptr)
    nnz = values.shape[0]
    pos = np.where(
        values == best[rows], np.arange(nnz, dtype=np.intp), nnz
    )
    winners[ne] = cols[np.minimum.reduceat(pos, starts)]
    return winners, best


def max_reduce_csr(
    indptr: np.ndarray, values: np.ndarray, m: int
) -> np.ndarray:
    """Per-row max over CSR-ordered pair values (0 on empty rows) — the
    row aggregation of the float32 per-pair certificates: a row's value
    error is bounded by its worst pair bound (min is 1-Lipschitz in the
    sup norm)."""
    out = np.zeros(m, dtype=np.float64)
    counts = np.diff(indptr)
    ne = counts > 0
    if np.any(ne):
        out[ne] = np.maximum.reduceat(values, indptr[:-1][ne])
    return out


# -- threshold sweep entries -------------------------------------------------

def gather_sweep_entries(
    columns: ModelColumns,
    Q: np.ndarray,
    indptr: np.ndarray,
    cols: np.ndarray,
) -> List[List[Tuple[float, int, float]]]:
    """Per-query Eq. (2) sweep entries for CSR candidate sets, gathered
    from the column store's location CSR in one vectorized pass.

    Returns, for each query row, the ``(distance, local owner, weight)``
    entries :func:`repro.core.quantification.entries_for_query` would
    build from the candidate sublist — same floats (the distances keep
    the scalar ``math.hypot``, whose results differ from ``np.hypot`` in
    the last ulp on this interpreter), same owner order.  All candidates
    must be discrete-tagged; the planner falls back to the per-object
    path otherwise (preserving the duck-typed / error semantics).
    """
    if cols.size and np.any(columns.tags[cols] != TAG_DISCRETE):
        raise QueryError(
            "gather_sweep_entries requires discrete-tagged candidates"
        )
    m = indptr.shape[0] - 1
    out: List[List[Tuple[float, int, float]]] = [[] for _ in range(m)]
    if not cols.size:
        return out
    counts = np.diff(indptr)
    gather, lens = kernels.csr_segment_gather(columns.loc_offsets, cols)
    qrow = np.repeat(kernels.csr_rows(indptr), lens).tolist()
    local = np.arange(cols.shape[0], dtype=np.intp) - np.repeat(
        indptr[:-1], counts
    )
    owner = np.repeat(local, lens).tolist()
    px = columns.locations[gather, 0].tolist()
    py = columns.locations[gather, 1].tolist()
    ww = columns.location_weights[gather].tolist()
    qxs = Q[:, 0].tolist()
    qys = Q[:, 1].tolist()
    hyp = math.hypot
    for x, y, w, r, i in zip(px, py, ww, qrow, owner):
        out[r].append((hyp(x - qxs[r], y - qys[r]), i, w))
    return out
