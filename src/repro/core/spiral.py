"""The spiral-search structure (Section 4.3).

For discrete distributions with bounded *spread*
``rho = max location probability / min location probability``, the
``m(rho, eps) = rho k ln(rho / eps) + k - 1`` locations nearest to the
query already determine every quantification probability up to a
one-sided additive ``eps`` (Lemma 4.6):

    ``pihat_i(q) <= pi_i(q) <= pihat_i(q) + eps``.

The structure stores all ``N = nk`` locations in a k-NN index (the
paper's [AC09] structure is "too complex to be implemented" — its own
Remark (ii) — so the kd-tree substitute is used) and evaluates the
truncated Eq. (10)/(11) with the same sorted sweep as the exact
algorithm.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..index.kdtree import KdTree
from ..uncertain.discrete import DiscreteUncertainPoint
from .nonzero import UncertainSet
from .quantification import sweep_quantification


def spread(points: Sequence) -> float:
    """``rho``: ratio of the largest to the smallest location probability
    over all locations of all points (Eq. (9))."""
    lo, hi = math.inf, 0.0
    for p in points:
        for w in p.weights:
            lo = min(lo, w)
            hi = max(hi, w)
    return hi / lo


def retrieval_size(rho: float, k: int, epsilon: float) -> int:
    """``m(rho, eps) = rho k ln(rho / eps) + k - 1`` (Section 1.3)."""
    if not 0.0 < epsilon < 1.0:
        raise QueryError("epsilon must lie in (0, 1)")
    return max(1, math.ceil(rho * k * math.log(max(rho / epsilon, 1.0 + 1e-12)) + k - 1))


class SpiralSearchPNN:
    """Deterministic approximate PNN queries via truncated spiral search.

    ``backend`` selects the m-nearest-locations retrieval structure:
    ``"kdtree"`` (default) or ``"quadtree"`` — the quad-tree
    branch-and-bound alternative the paper's Remark (ii) suggests
    ([Har11]).  Both return identical answers.
    """

    def __init__(self, points: Sequence, backend: str = "kdtree"):
        self.uset = UncertainSet(points)
        if not self.uset.all_discrete():
            raise QueryError("spiral search requires discrete distributions")
        self.points = list(points)
        self.k = self.uset.max_description_complexity()
        self.rho = spread(points)
        locations: List[Tuple[float, float]] = []
        owners: List[int] = []
        weights: List[float] = []
        for i, p in enumerate(points):
            for loc, w in zip(p.locations, p.weights):
                locations.append(loc)
                owners.append(i)
                weights.append(w)
        self._owners = owners
        self._weights = weights
        if backend == "kdtree":
            self._tree = KdTree(locations)
        elif backend == "quadtree":
            from ..index.quadtree import QuadTree

            self._tree = QuadTree(locations)
        else:
            raise QueryError(f"unknown backend {backend!r}")
        self.backend = backend
        self.total_locations = len(locations)

    def m(self, epsilon: float) -> int:
        """Locations retrieved for error budget ``epsilon``."""
        return min(retrieval_size(self.rho, self.k, epsilon), self.total_locations)

    def query(self, q, epsilon: float) -> Dict[int, float]:
        """``{ i : pihat_i(q) }`` with the Lemma 4.6 guarantee.

        Points with no retrieved location have ``pihat_i = 0``
        (and therefore ``pi_i <= eps``).
        """
        m = self.m(epsilon)
        nearest = self._tree.k_nearest(q, m)
        entries = [
            (d, self._owners[idx], self._weights[idx]) for d, idx in nearest
        ]
        pi_hat = sweep_quantification(entries, len(self.points))
        return {i: v for i, v in enumerate(pi_hat) if v > 0.0}

    def query_vector(self, q, epsilon: float) -> List[float]:
        est = self.query(q, epsilon)
        return [est.get(i, 0.0) for i in range(len(self.points))]


def adversarial_instance(
    epsilon: float = 0.02, n: Optional[int] = None
) -> Tuple[List[DiscreteUncertainPoint], Tuple[float, float]]:
    """The Remark (i) counterexample to weight-threshold pruning.

    Returns ``(points, q)`` where dropping locations of weight below
    ``eps / k`` flips the apparent ranking: the true most-likely NN is
    ``P_1`` (near location of weight ``3 eps``), but ignoring the many
    middle locations of tiny weight ``2/n`` makes ``P_2`` (weight
    ``5 eps``) look more likely.  The spiral search, which truncates by
    *distance* rather than by weight, ranks them correctly.

    The filler weights are ``2 / n``; the paper's flip needs them well
    below ``eps / k = eps / 2``, so the default ``n`` is ``~8 / eps``.
    """
    if n is None:
        n = 2 * math.ceil(4.0 / epsilon)
    if n < 8 or n % 2 != 0:
        raise QueryError("n must be an even integer >= 8")
    q = (0.0, 0.0)
    far = (1000.0, 1000.0)  # overflow location holding the residual mass
    points: List[DiscreteUncertainPoint] = []
    # P_1: nearest location p_1 at distance 1 with weight 3 eps.
    points.append(
        DiscreteUncertainPoint([(1.0, 0.0), far], [3.0 * epsilon, 1.0 - 3.0 * epsilon])
    )
    # P_2: location p_2 at distance 3 with weight 5 eps.
    points.append(
        DiscreteUncertainPoint([(3.0, 0.0), far], [5.0 * epsilon, 1.0 - 5.0 * epsilon])
    )
    # n/2 filler points with a tiny-weight location at distance 2.
    for t in range(n // 2):
        ang = 2.0 * math.pi * t / (n // 2)
        loc = (2.0 * math.cos(ang), 2.0 * math.sin(ang))
        points.append(DiscreteUncertainPoint([loc, far], [2.0 / n, 1.0 - 2.0 / n]))
    return points, q


def weight_threshold_estimate(
    points: Sequence, q, threshold: float
) -> List[float]:
    """The flawed heuristic of Remark (i): drop all locations with weight
    below ``threshold`` before evaluating Eq. (2)."""
    entries = []
    qx, qy = q[0], q[1]
    for i, p in enumerate(points):
        for (px, py), w in zip(p.locations, p.weights):
            if w >= threshold:
                entries.append((math.hypot(px - qx, py - qy), i, w))
    return sweep_quantification(entries, len(points))
