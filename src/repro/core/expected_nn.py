"""Expected-distance nearest neighbors ([AESZ12] — the PODS 2012 sibling
paper "Nearest-neighbor searching under uncertainty I").

Ranks uncertain points by ``E[d(q, P_i)]``.  The paper under
reproduction discusses this criterion in Section 1.2: it is easier
(each expectation is computed independently) but "is not a good
indicator under large uncertainty" — the ablation benchmark measures how
often the expected-distance winner differs from the most-probable
nearest neighbor.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..geometry import kernels
from ..index.rtree import RTree
from .nonzero import UncertainSet


class ExpectedNNIndex:
    """Expected-distance NN queries with R-tree branch-and-bound.

    ``rect_mindist(q, support bbox)`` lower-bounds the expected distance
    (every support point is at least that far), so best-first search
    prunes exactly.
    """

    def __init__(self, points: Sequence):
        self.uset = UncertainSet(points)
        self.points = list(points)
        self._rtree = RTree([p.support_bbox() for p in points])

    def expected_distance(self, i: int, q) -> float:
        return self.points[i].expected_distance(q)

    def query(self, q) -> Tuple[int, float]:
        """``(argmin_i E[d(q, P_i)], value)``."""
        return self._rtree.best_first_min(
            q, lambda i: self.points[i].expected_distance(q)
        )

    def query_many(self, qs) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`query`: ``(winner indices, expected distances)``,
        each of shape ``(m,)``.

        Routes through the R-tree's vectorized batched best-first search;
        each surviving candidate's expectation is evaluated for its whole
        surviving query subset in one ``expected_distance_many`` call.
        """
        return self._rtree.query_many(
            qs, lambda i, Qs: self.points[i].expected_distance_many(Qs)
        )

    def expected_distance_matrix(self, qs) -> np.ndarray:
        """``E[d(q, P_i)]`` for every query/point pair, shape ``(m, n)``."""
        Q = kernels.as_query_array(qs)
        return np.column_stack(
            [p.expected_distance_many(Q) for p in self.points]
        )

    def rank(self, q, top: int = None) -> List[Tuple[int, float]]:
        """Points sorted by expected distance (the expected-kNN order).

        With ``top`` given, uses the R-tree best-first heap and stops as
        soon as no subtree's ``rect_mindist`` lower bound can displace
        the ``top``-th best — the full linear scan only happens for the
        complete ranking.
        """
        if top is not None:
            if top < 1:
                return []
            return self._rtree.best_first_topk(
                q, lambda i: self.points[i].expected_distance(q), top
            )
        values = [
            (p.expected_distance(q), i) for i, p in enumerate(self.points)
        ]
        values.sort()
        return [(i, v) for v, i in values]


def disagreement_rate(
    points: Sequence,
    queries: Sequence,
    most_likely,
) -> float:
    """Fraction of queries where the expected-distance NN differs from
    the most-likely NN.

    ``most_likely`` maps a query to the index with the largest
    quantification probability (e.g. an exact sweep or a Monte-Carlo
    estimate).
    """
    index = ExpectedNNIndex(points)
    disagreements = 0
    for q in queries:
        e_winner, _ = index.query(q)
        if e_winner != most_likely(q):
            disagreements += 1
    return disagreements / max(len(queries), 1)
