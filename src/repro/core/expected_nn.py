"""Expected-distance nearest neighbors ([AESZ12] — the PODS 2012 sibling
paper "Nearest-neighbor searching under uncertainty I").

Ranks uncertain points by ``E[d(q, P_i)]``.  The paper under
reproduction discusses this criterion in Section 1.2: it is easier
(each expectation is computed independently) but "is not a good
indicator under large uncertainty" — the ablation benchmark measures how
often the expected-distance winner differs from the most-probable
nearest neighbor.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import resilience as _resilience
from ..geometry import kernels
from ..index.rtree import RTree
from .nonzero import UncertainSet
from .planner import QueryPlanner


class ExpectedNNIndex:
    """Expected-distance NN queries with R-tree branch-and-bound.

    ``rect_mindist(q, support bbox)`` lower-bounds the expected distance
    (every support point is at least that far), so best-first search
    prunes exactly.  Batched queries route through the SoA
    :class:`repro.QueryPlanner` by default.

    ``uset`` / ``planner`` / ``columns`` accept structures the caller
    already holds over the same points (the :class:`repro.Engine`
    registry threads its cached ones through), so repeated construction
    never rebuilds shared state; each is built lazily here when omitted.
    """

    def __init__(
        self,
        points: Sequence,
        uset: Optional[UncertainSet] = None,
        planner: Optional[QueryPlanner] = None,
        columns=None,
    ):
        self.uset = uset if uset is not None else UncertainSet(points)
        self.points = list(points)
        self._rtree_cache: Optional[RTree] = None
        self._planner: Optional[QueryPlanner] = planner
        self._columns = columns

    @property
    def planner(self) -> QueryPlanner:
        """The lazily built prune-then-evaluate planner."""
        if self._planner is None:
            self._planner = QueryPlanner(self.points, columns=self._columns)
        return self._planner

    @property
    def _rtree(self) -> RTree:
        """Lazily built: only the scalar branch-and-bound paths (and the
        comparison-only ``query_many_rtree``) need the recursive tree."""
        if self._rtree_cache is None:
            self._rtree_cache = RTree([p.support_bbox() for p in self.points])
        return self._rtree_cache

    def expected_distance(self, i: int, q) -> float:
        return self.points[i].expected_distance(q)

    def query(self, q) -> Tuple[int, float]:
        """``(argmin_i E[d(q, P_i)], value)``."""
        return self._rtree.best_first_min(
            q, lambda i: self.points[i].expected_distance(q)
        )

    def query_many(self, qs, exact: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`query`: ``(winner indices, expected distances)``,
        each of shape ``(m,)``.

        The default path prunes each query's candidate set through the
        planner's vectorized ``dmin <= min dmax`` envelope test and
        evaluates expectations only on survivors; ``exact=True`` falls
        back to evaluating the full ``(m, n)`` expectation matrix.  Both
        return identical winners and values (ties break to the lowest
        index).
        """
        if exact:
            E = self.expected_distance_matrix(qs)
            arg = E.argmin(axis=1)
            return arg, E[np.arange(E.shape[0]), arg]
        return self.planner.expected_nn_many(qs)

    def query_many_rtree(self, qs) -> Tuple[np.ndarray, np.ndarray]:
        """The R-tree level-wise batched best-first search (the pre-planner
        batch path, kept for comparison benchmarks)."""
        return self._rtree.query_many(
            qs, lambda i, Qs: self.points[i].expected_distance_many(Qs)
        )

    def expected_distance_matrix(self, qs) -> np.ndarray:
        """``E[d(q, P_i)]`` for every query/point pair, shape ``(m, n)``."""
        Q = kernels.as_query_array(qs)
        _resilience.require_bytes(
            Q.shape[0] * len(self.points) * 8,
            f"expected_distance_matrix output "
            f"(m={Q.shape[0]}, n={len(self.points)})",
        )
        return np.column_stack(
            [p.expected_distance_many(Q) for p in self.points]
        )

    def rank(self, q, top: int = None) -> List[Tuple[int, float]]:
        """Points sorted by expected distance (the expected-kNN order).

        With ``top`` given, uses the R-tree best-first heap and stops as
        soon as no subtree's ``rect_mindist`` lower bound can displace
        the ``top``-th best — the full linear scan only happens for the
        complete ranking.
        """
        if top is not None:
            if top < 1:
                return []
            return self._rtree.best_first_topk(
                q, lambda i: self.points[i].expected_distance(q), top
            )
        values = [
            (p.expected_distance(q), i) for i, p in enumerate(self.points)
        ]
        values.sort()
        return [(i, v) for v, i in values]


def disagreement_rate(
    points: Sequence,
    queries: Sequence,
    most_likely,
) -> float:
    """Fraction of queries where the expected-distance NN differs from
    the most-likely NN.

    ``most_likely`` maps a query to the index with the largest
    quantification probability (e.g. an exact sweep or a Monte-Carlo
    estimate).
    """
    index = ExpectedNNIndex(points)
    disagreements = 0
    for q in queries:
        e_winner, _ = index.query(q)
        if e_winner != most_likely(q):
            disagreements += 1
    return disagreements / max(len(queries), 1)
