"""Expected-distance nearest neighbors ([AESZ12] — the PODS 2012 sibling
paper "Nearest-neighbor searching under uncertainty I").

Ranks uncertain points by ``E[d(q, P_i)]``.  The paper under
reproduction discusses this criterion in Section 1.2: it is easier
(each expectation is computed independently) but "is not a good
indicator under large uncertainty" — the ablation benchmark measures how
often the expected-distance winner differs from the most-probable
nearest neighbor.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..index.rtree import RTree
from .nonzero import UncertainSet


class ExpectedNNIndex:
    """Expected-distance NN queries with R-tree branch-and-bound.

    ``rect_mindist(q, support bbox)`` lower-bounds the expected distance
    (every support point is at least that far), so best-first search
    prunes exactly.
    """

    def __init__(self, points: Sequence):
        self.uset = UncertainSet(points)
        self.points = list(points)
        self._rtree = RTree([p.support_bbox() for p in points])

    def expected_distance(self, i: int, q) -> float:
        return self.points[i].expected_distance(q)

    def query(self, q) -> Tuple[int, float]:
        """``(argmin_i E[d(q, P_i)], value)``."""
        return self._rtree.best_first_min(
            q, lambda i: self.points[i].expected_distance(q)
        )

    def rank(self, q, top: int = None) -> List[Tuple[int, float]]:
        """Points sorted by expected distance (the expected-kNN order)."""
        values = [
            (p.expected_distance(q), i) for i, p in enumerate(self.points)
        ]
        values.sort()
        if top is not None:
            values = values[:top]
        return [(i, v) for v, i in values]


def disagreement_rate(
    points: Sequence,
    queries: Sequence,
    most_likely,
) -> float:
    """Fraction of queries where the expected-distance NN differs from
    the most-likely NN.

    ``most_likely`` maps a query to the index with the largest
    quantification probability (e.g. an exact sweep or a Monte-Carlo
    estimate).
    """
    index = ExpectedNNIndex(points)
    disagreements = 0
    for q in queries:
        e_winner, _ = index.query(q)
        if e_winner != most_likely(q):
            disagreements += 1
    return disagreements / max(len(queries), 1)
