"""Theorem 2.11: point location over ``V!=0`` with persistent labels.

The diagram's cells are preprocessed for point location; the label sets
``P_phi`` are stored in the [DSST89]-style delta store of
:mod:`repro.index.persistence` (adjacent cells differ by one element, so
total label storage is O(mu) instead of O(n mu)).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..index.persistence import DeltaSetStore


class PersistentNonzeroIndex:
    """Point-location index with persistent ``P_phi`` storage.

    Wraps a diagram exposing ``subdivision`` (a
    :class:`~repro.geometry.dcel.PlanarSubdivision`), per-cycle
    ``labels``, and a ``query_exact`` fallback oracle — i.e. either
    :class:`~repro.core.nonzero_voronoi.NonzeroVoronoiDiagram` or
    :class:`~repro.core.discrete_voronoi.DiscreteNonzeroVoronoi`.
    """

    def __init__(self, diagram):
        self.diagram = diagram
        sub = diagram.subdivision
        labels: List[Optional[FrozenSet[int]]] = diagram.labels
        # Cycle adjacency: two cycles sharing an edge (via its twin
        # half-edges) are adjacent regions of the subdivision.
        adjacency: Set[Tuple[int, int]] = set()
        for e in range(len(sub.edges)):
            a = sub.cycle_of[2 * e]
            b = sub.cycle_of[2 * e + 1]
            if a != b:
                adjacency.add((min(a, b), max(a, b)))
        sets = [frozenset() if l is None else l for l in labels]
        self.store = DeltaSetStore(sets, adjacency)
        from ..geometry.pointlocation import SlabLocator

        self.locator = SlabLocator(sub)

    def query(self, q) -> FrozenSet[int]:
        """``NN!=0(q)`` in O(log + output): locate, then retrieve the
        persistent label."""
        cid = self.locator.locate_cycle(q[0], q[1])
        if cid is None:
            return self.diagram.query_exact(q)
        label = self.store.get(cid)
        if not label:
            # Degenerate cycle (no representative point): fall back.
            return self.diagram.query_exact(q)
        return label

    def query_many(self, qs) -> List[FrozenSet[int]]:
        """Batched :meth:`query`: one vectorized point-location pass,
        persistent labels retrieved once per distinct cycle, and the
        exact oracle only for rows the locator cannot settle."""
        from ..geometry.kernels import as_query_array

        Q = as_query_array(qs)
        cids = self.locator.locate_cycle_many(Q)
        cache = {}
        out: List[FrozenSet[int]] = []
        for row, cid in enumerate(cids):
            cid = int(cid)
            if cid not in cache:
                cache[cid] = self.store.get(cid) if cid >= 0 else None
            label = cache[cid]
            if not label:
                label = self.diagram.query_exact(tuple(Q[row]))
            out.append(label)
        return out

    def space_statistics(self) -> dict:
        """Storage comparison: persistent deltas vs explicit label sets."""
        explicit = sum(len(s) for s in (self.diagram.labels or []) if s)
        return {
            "delta_elements": self.store.delta_space(),
            "explicit_elements": explicit,
            "cycles": len(self.diagram.subdivision.cycles),
        }
