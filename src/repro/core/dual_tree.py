"""Dual-tree candidate generation: output-sensitive prune passes.

The flat pruned tier evaluates the envelope bracket of **every**
(query, object) pair — O(m·n) bound work even when almost everything is
pruned.  This module replaces that dense pass with the standard batch-NN
acceleration of production spatial engines: a best-first **dual
traversal** of a query-block tree against an object-envelope tree, both
STR-packed straight from the SoA arrays (:func:`repro.index.bulk.
str_hierarchy` — no node objects, no recursion), processed one level at
a time so every step is a handful of vectorized kernels over the
surviving node-pair frontier.

Per level the traversal

1. brackets every frontier pair ``(query block B, object group G)`` with
   ``pair_lb <= min dmin_i(q)`` and ``pair_ub >= max dmax_i(q)`` over
   the pair (rect–rect kernels over the group's support bbox, enclosing
   disks, and — for the expected criterion — first-moment aggregates);
2. maintains a per-query-block running best upper bound: sorting each
   block's pairs by ``pair_ub`` and scanning until the covered member
   count reaches ``k`` yields ``block_best_ub >= k``-th smallest
   ``ub_j(q)`` for *every* query in the block, cascaded down the query
   tree (children inherit ``min`` with their parent's bound);
3. prunes pairs with ``pair_lb > block_best_ub * slack`` and expands the
   survivors into the children cross product.

At the leaf level each query block refines its reachable members with
the **exact flat-tier bounds** (the same
:meth:`~repro.uncertain.ModelColumns.envelope_bounds_many` /
:meth:`~repro.uncertain.ModelColumns.expected_bounds_many` floats) and
the same ``k``-th-smallest-ub cutoff.  Because every object among the
``k`` smallest upper bounds of a query provably survives node pruning,
the member-level cutoff equals the flat tier's cutoff *bit for bit*,
and the emitted survivor sets are **exactly the flat tier's survivor
sets** — a CSR layout feeding the existing evaluators unchanged, so
answers stay bit-identical while the bound work becomes proportional to
the surviving frontier instead of ``m·n``.

Parallelism fans out over **query subtrees** (each root child's
traversal is independent) via :func:`repro.core.parallel.map_ordered`;
per-query survivor sets do not depend on the fan-out, so every backend
returns identical CSR bytes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EXECUTION
from ..errors import QueryError
from ..geometry import kernels
from ..index.bulk import str_hierarchy
from .. import resilience as _resilience
from . import parallel as _parallel

__all__ = [
    "DualTreeCandidates",
    "EnvelopeObjectTree",
    "QueryBlockTree",
    "dual_tree_candidates",
]

#: Mirrors the planner's cutoff slack so a bound a few ulps above its
#: true value can never discard a genuine candidate.
_CUTOFF_SLACK = 1.0 + 1e-12


class _PackedTree:
    """Array-form STR hierarchy shared by both traversal sides.

    Levels are stored **root-first**: ``bboxes[0]`` is the root group,
    ``bboxes[depth - 1]`` the leaves.  ``child_ptr[l]`` / ``child_idx[l]``
    are the CSR child lists of level ``l`` into level ``l + 1``;
    ``leaf_items[j]`` holds the (sorted) base-item indices of leaf ``j``
    and ``sizes[l]`` the base-item count under every node.
    """

    def __init__(self, levels: List[Tuple[List[np.ndarray], np.ndarray]]):
        if not levels:
            raise QueryError("cannot pack a tree over zero items")
        depth = len(levels)
        self.depth = depth
        self.bboxes: List[np.ndarray] = [
            levels[depth - 1 - l][1] for l in range(depth)
        ]
        self.child_ptr: List[np.ndarray] = []
        self.child_idx: List[np.ndarray] = []
        for l in range(depth - 1):
            groups = levels[depth - 1 - l][0]
            lens = np.asarray([g.size for g in groups], dtype=np.intp)
            ptr = np.zeros(lens.size + 1, dtype=np.intp)
            np.cumsum(lens, out=ptr[1:])
            self.child_ptr.append(ptr)
            self.child_idx.append(
                np.concatenate(groups).astype(np.intp, copy=False)
            )
        self.leaf_items: List[np.ndarray] = [
            np.sort(g.astype(np.intp, copy=False)) for g in levels[0][0]
        ]
        # Flat CSR view of the leaf partition, shared by every
        # refinement chunk / thread task instead of re-concatenating.
        self.leaf_flat: np.ndarray = np.concatenate(self.leaf_items)
        self.leaf_ptr: np.ndarray = np.zeros(
            len(self.leaf_items) + 1, dtype=np.intp
        )
        np.cumsum([g.shape[0] for g in self.leaf_items], out=self.leaf_ptr[1:])
        sizes: List[Optional[np.ndarray]] = [None] * depth
        sizes[depth - 1] = np.asarray(
            [g.size for g in self.leaf_items], dtype=np.intp
        )
        for l in range(depth - 2, -1, -1):
            gathered = sizes[l + 1][self.child_idx[l]]
            sizes[l] = np.add.reduceat(gathered, self.child_ptr[l][:-1])
        self.sizes: List[np.ndarray] = sizes  # type: ignore[assignment]

    def n_nodes(self, level: int) -> int:
        return self.bboxes[level].shape[0]

    @property
    def node_count(self) -> int:
        return sum(b.shape[0] for b in self.bboxes)

    @property
    def nbytes(self) -> int:
        total = 0
        for arrs in (self.bboxes, self.child_ptr, self.child_idx, self.sizes):
            total += sum(a.nbytes for a in arrs)
        total += sum(a.nbytes for a in self.leaf_items)
        total += self.leaf_flat.nbytes + self.leaf_ptr.nbytes
        return int(total)


def _leaf_reduce(ufunc, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    return ufunc.reduceat(values, starts)


class EnvelopeObjectTree(_PackedTree):
    """STR hierarchy over the object envelopes of a
    :class:`~repro.uncertain.ModelColumns` store.

    Every node aggregates, besides the support-bbox union the packer
    already keeps, the column summaries the pair bounds need: the bbox
    of member enclosing-disk centers plus the largest radius, and the
    bbox of member first moments plus the largest mean reach (with an
    ``all_mean`` flag so the Jensen terms are only used when every
    member has a known mean).  The tree depends only on the column
    store — one build serves every criterion, ``k``, and query batch,
    which is why the :class:`repro.Engine` registry caches it per
    generation.
    """

    def __init__(self, columns, leaf_size: int = 32, fanout: int = 8):
        super().__init__(str_hierarchy(columns.bboxes, leaf_size, fanout))
        self.n = int(columns.n)
        self.leaf_size = int(leaf_size)
        self.fanout = int(fanout)
        depth = self.depth
        order = self.leaf_flat
        starts = self.leaf_ptr[:-1]
        cx, cy = columns.centers[order, 0], columns.centers[order, 1]
        mx, my = columns.means[order, 0], columns.means[order, 1]
        cb = [None] * depth
        mb = [None] * depth
        mr = [None] * depth
        rc = [None] * depth
        am = [None] * depth
        cb[-1] = np.column_stack(
            [
                _leaf_reduce(np.minimum, cx, starts),
                _leaf_reduce(np.minimum, cy, starts),
                _leaf_reduce(np.maximum, cx, starts),
                _leaf_reduce(np.maximum, cy, starts),
            ]
        )
        mb[-1] = np.column_stack(
            [
                _leaf_reduce(np.minimum, mx, starts),
                _leaf_reduce(np.minimum, my, starts),
                _leaf_reduce(np.maximum, mx, starts),
                _leaf_reduce(np.maximum, my, starts),
            ]
        )
        mr[-1] = _leaf_reduce(np.maximum, columns.radii[order], starts)
        rc[-1] = _leaf_reduce(np.maximum, columns.mean_reach[order], starts)
        am[-1] = _leaf_reduce(
            np.minimum, columns.has_mean[order].astype(np.uint8), starts
        ).astype(bool)
        for l in range(depth - 2, -1, -1):
            idx = self.child_idx[l]
            ptr = self.child_ptr[l][:-1]
            cb[l] = np.column_stack(
                [
                    np.minimum.reduceat(cb[l + 1][idx, 0], ptr),
                    np.minimum.reduceat(cb[l + 1][idx, 1], ptr),
                    np.maximum.reduceat(cb[l + 1][idx, 2], ptr),
                    np.maximum.reduceat(cb[l + 1][idx, 3], ptr),
                ]
            )
            mb[l] = np.column_stack(
                [
                    np.minimum.reduceat(mb[l + 1][idx, 0], ptr),
                    np.minimum.reduceat(mb[l + 1][idx, 1], ptr),
                    np.maximum.reduceat(mb[l + 1][idx, 2], ptr),
                    np.maximum.reduceat(mb[l + 1][idx, 3], ptr),
                ]
            )
            mr[l] = np.maximum.reduceat(mr[l + 1][idx], ptr)
            rc[l] = np.maximum.reduceat(rc[l + 1][idx], ptr)
            am[l] = np.minimum.reduceat(
                am[l + 1][idx].astype(np.uint8), ptr
            ).astype(bool)
        self.centers_bbox: List[np.ndarray] = cb  # type: ignore[assignment]
        self.means_bbox: List[np.ndarray] = mb  # type: ignore[assignment]
        self.max_radius: List[np.ndarray] = mr  # type: ignore[assignment]
        self.max_reach: List[np.ndarray] = rc  # type: ignore[assignment]
        self.all_mean: List[np.ndarray] = am  # type: ignore[assignment]

    @property
    def nbytes(self) -> int:
        total = _PackedTree.nbytes.fget(self)  # type: ignore[attr-defined]
        for arrs in (
            self.centers_bbox,
            self.means_bbox,
            self.max_radius,
            self.max_reach,
            self.all_mean,
        ):
            total += sum(a.nbytes for a in arrs)
        return int(total)

    def stats(self) -> Dict[str, int]:
        return {
            "n": self.n,
            "depth": self.depth,
            "nodes": self.node_count,
            "leaves": len(self.leaf_items),
            "leaf_size": self.leaf_size,
            "fanout": self.fanout,
        }


class QueryBlockTree(_PackedTree):
    """STR hierarchy over the query points (degenerate point bboxes)."""

    def __init__(self, Q, leaf_size: int = 32, fanout: int = 8):
        Q = kernels.as_query_array(Q)
        if Q.shape[0] == 0:
            raise QueryError("QueryBlockTree requires at least one query")
        self.m = Q.shape[0]
        super().__init__(
            str_hierarchy(np.concatenate([Q, Q], axis=1), leaf_size, fanout)
        )


@dataclasses.dataclass
class DualTreeCandidates:
    """CSR survivor sets of one dual-tree prune pass.

    ``indptr`` has shape ``(m + 1,)``; ``indices[indptr[r]:indptr[r+1]]``
    are query ``r``'s surviving object columns in ascending order —
    exactly the flat tier's survivors.  ``stats`` records the traversal
    telemetry (node pairs visited / pruned, leaf pairs, member-level
    refinements, survivor count).
    """

    indptr: np.ndarray
    indices: np.ndarray
    stats: Dict[str, float]

    @property
    def m(self) -> int:
        return self.indptr.shape[0] - 1

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def counts(self) -> np.ndarray:
        """Survivor count per query, shape ``(m,)``."""
        return np.diff(self.indptr)

    def lists(self) -> List[np.ndarray]:
        """Per-query survivor index arrays (views into ``indices``)."""
        return [
            self.indices[self.indptr[r] : self.indptr[r + 1]]
            for r in range(self.m)
        ]

    def mask(self, n: int, lo: int = 0, hi: Optional[int] = None) -> np.ndarray:
        """Densify rows ``lo:hi`` to a boolean ``(hi - lo, n)`` mask."""
        hi = self.m if hi is None else hi
        out = np.zeros((hi - lo, n), dtype=bool)
        ptr = self.indptr[lo : hi + 1]
        rows = np.repeat(np.arange(hi - lo, dtype=np.intp), np.diff(ptr))
        out[rows, self.indices[ptr[0] : ptr[-1]]] = True
        return out


def _pair_bounds(
    qb: np.ndarray, otree: EnvelopeObjectTree, lvl: int, on: np.ndarray,
    criterion: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Conservative ``(pair_lb, pair_ub)`` brackets for frontier pairs.

    ``pair_lb`` lower-bounds the criterion's ``lb_i(q)`` and ``pair_ub``
    upper-bounds ``ub_i(q)`` for every query in the block and every
    member of the group — the containment argument behind
    :meth:`ModelColumns.envelope_bounds_many` lifted to node aggregates.
    """
    sb = otree.bboxes[lvl][on]
    lb = kernels.rect_rect_mindist_pairs(qb, sb)
    ub = kernels.rect_rect_maxdist_pairs(qb, sb)
    cbb = otree.centers_bbox[lvl][on]
    r = otree.max_radius[lvl][on]
    lb = np.maximum(
        lb, np.maximum(kernels.rect_rect_mindist_pairs(qb, cbb) - r, 0.0)
    )
    ub = np.minimum(ub, kernels.rect_rect_maxdist_pairs(qb, cbb) + r)
    if criterion == "expected":
        am = otree.all_mean[lvl][on]
        mbb = otree.means_bbox[lvl][on]
        lb = np.maximum(
            lb,
            np.where(am, kernels.rect_rect_mindist_pairs(qb, mbb), 0.0),
        )
        reach = otree.max_reach[lvl][on]
        ub = np.minimum(
            ub,
            np.where(
                am,
                kernels.rect_rect_maxdist_pairs(qb, mbb) + reach,
                np.inf,
            ),
        )
    return lb, ub


#: The shared cutoff selector: one implementation for both generators
#: keeps the leaf cutoff the exact float the flat tier selects.
_kth_smallest = kernels.kth_smallest_rowwise


def _coverage_best(
    blocks_sorted: np.ndarray,
    ub_sorted: np.ndarray,
    sizes_sorted: np.ndarray,
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-block best upper bound by the coverage scan.

    Inputs are pair arrays sorted by ``(block id, pair_ub)``: scanning
    each block's pairs in ascending ``pair_ub`` until the covered member
    count (``sizes``) reaches ``k`` yields a bound that dominates the
    ``k``-th smallest member ub for every query in the block.  Returns
    ``(unique block ids, per-block best)`` — the single implementation
    behind both the node-level traversal and the R1 per-query stage.
    """
    uniq, seg_starts = np.unique(blocks_sorted, return_index=True)
    seg_ends = np.append(seg_starts[1:], blocks_sorted.shape[0])
    cs = np.cumsum(sizes_sorted)
    base = np.where(seg_starts > 0, cs[seg_starts - 1], 0)
    pos = np.minimum(np.searchsorted(cs, base + k, side="left"), seg_ends - 1)
    return uniq, ub_sorted[pos]


def _traverse(
    Q: np.ndarray,
    qtree: QueryBlockTree,
    otree: EnvelopeObjectTree,
    columns,
    k: int,
    criterion: str,
    slack: float,
    qn: np.ndarray,
    ql: int,
    pair_budget: int,
) -> Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], Dict[str, int]]:
    """Level-at-a-time descent from query nodes ``qn`` (at level ``ql``)
    against the object root; returns per-query survivor arrays plus the
    traversal counters."""
    stats = {
        "node_pairs_visited": 0,
        "node_pairs_pruned": 0,
        "leaf_pairs": 0,
        "point_node_pairs": 0,
        "refined_pairs": 0,
    }
    on = np.zeros(qn.shape[0], dtype=np.intp)  # object root per pair
    ol = 0
    inherited = np.full(qtree.n_nodes(ql), np.inf)
    while True:
        _resilience.checkpoint("dual_tree.level")
        q_leaf = ql == qtree.depth - 1
        o_leaf = ol == otree.depth - 1
        qb = qtree.bboxes[ql][qn]
        lb, ub = _pair_bounds(qb, otree, ol, on, criterion)
        stats["node_pairs_visited"] += int(qn.shape[0])
        # Running best upper bound per query block: scan each block's
        # pairs by ascending pair_ub until >= k members are covered —
        # every query in the block then has k objects at distance
        # <= that pair_ub, so it dominates the k-th smallest ub.
        sizes = otree.sizes[ol][on]
        order = np.lexsort((ub, qn))
        uniq, best = _coverage_best(qn[order], ub[order], sizes[order], k)
        best = np.minimum(best, inherited[uniq])
        best_full = np.full(qtree.n_nodes(ql), np.inf)
        best_full[uniq] = best
        keep = lb <= best_full[qn] * slack
        stats["node_pairs_pruned"] += int(np.count_nonzero(~keep))
        qn = qn[keep]
        on = on[keep]
        if q_leaf and o_leaf:
            break
        # Expand survivors into the children cross product; a side that
        # already sits at its leaf level keeps its nodes.
        if q_leaf:
            nq = np.ones(qn.shape[0], dtype=np.intp)
        else:
            qptr = qtree.child_ptr[ql]
            nq = qptr[qn + 1] - qptr[qn]
        if o_leaf:
            no = np.ones(on.shape[0], dtype=np.intp)
        else:
            optr = otree.child_ptr[ol]
            no = optr[on + 1] - optr[on]
        tot = nq * no
        total = int(tot.sum())
        pid = np.repeat(np.arange(qn.shape[0], dtype=np.intp), tot)
        offs = np.zeros(qn.shape[0], dtype=np.intp)
        np.cumsum(tot[:-1], out=offs[1:])
        r = np.arange(total, dtype=np.intp) - offs[pid]
        qi, oi = np.divmod(r, no[pid])
        new_qn = qn[pid] if q_leaf else qtree.child_idx[ql][qptr[qn[pid]] + qi]
        new_on = on[pid] if o_leaf else otree.child_idx[ol][optr[on[pid]] + oi]
        if q_leaf:
            inherited = best_full
        else:
            inherited = np.full(qtree.n_nodes(ql + 1), np.inf)
            inherited[new_qn] = best_full[qn[pid]]
            ql += 1
        if not o_leaf:
            ol += 1
        qn, on = new_qn, new_on
    stats["leaf_pairs"] = int(qn.shape[0])
    # Group the surviving leaf pairs by query leaf and refine them in
    # chunks of whole query-leaf segments whose estimated member-pair
    # count stays under the budget — the refinement's per-pair
    # temporaries are the traversal's only batch-sized allocations, so
    # this keeps peak memory O(budget) exactly like the planner's row
    # tiles (a query's cutoff needs all of its reachable members, hence
    # the whole-segment granularity).
    order = np.argsort(qn, kind="stable")
    qn_s = qn[order]
    on_s = on[order]
    leaf_lvl = otree.depth - 1
    q_sizes = qtree.sizes[qtree.depth - 1]
    est = q_sizes[qn_s] * otree.sizes[leaf_lvl][on_s]
    uniq, seg_starts = np.unique(qn_s, return_index=True)
    seg_ends = np.append(seg_starts[1:], qn_s.shape[0])
    chunks: List[Tuple[int, int]] = []
    start = 0
    acc = 0
    for gi in range(uniq.shape[0]):
        seg_est = int(est[seg_starts[gi] : seg_ends[gi]].sum())
        if acc and acc + seg_est > pair_budget:
            chunks.append((start, int(seg_starts[gi])))
            start = int(seg_starts[gi])
            acc = 0
        acc += seg_est
    chunks.append((start, qn_s.shape[0]))
    parts = []
    for ci, (lo, hi) in enumerate(chunks):
        _resilience.checkpoint("dual_tree.refine", ci)
        parts.append(
            _refine(
                Q, qtree, otree, columns, k, criterion, slack,
                qn_s[lo:hi], on_s[lo:hi], stats,
            )
        )
    return (
        (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
        ),
        stats,
    )


def _refine(
    Q: np.ndarray,
    qtree: QueryBlockTree,
    otree: EnvelopeObjectTree,
    columns,
    k: int,
    criterion: str,
    slack: float,
    qn: np.ndarray,
    on: np.ndarray,
    stats: Dict[str, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Member-level refinement of one chunk of (query leaf, object leaf)
    pairs (``qn`` sorted, whole query-leaf segments); returns
    ``(rows, per-row survivor counts, survivor columns)``."""
    leaf_lvl = otree.depth - 1
    # Stage R1 — expand each (query leaf, object leaf) pair into
    # individual (query row, object leaf) pairs and prune them with the
    # per-*query* node bounds: the block-level best upper bound is
    # replaced by each query's own coverage cutoff, so whole leaves die
    # per query before any member is touched.
    gather, reps = kernels.csr_segment_gather(qtree.leaf_ptr, qn)
    pair_row = qtree.leaf_flat[gather]
    pair_on = np.repeat(on, reps)
    qp = Q[pair_row]
    qb = np.concatenate([qp, qp], axis=1)
    lb1, ub1 = _pair_bounds(qb, otree, leaf_lvl, pair_on, criterion)
    stats["point_node_pairs"] += int(pair_row.shape[0])
    sizes = otree.sizes[leaf_lvl][pair_on]
    order = np.lexsort((ub1, pair_row))
    uniq, best = _coverage_best(
        pair_row[order], ub1[order], sizes[order], k
    )
    best_full = np.empty(Q.shape[0], dtype=np.float64)
    best_full[uniq] = best
    keep1 = lb1 <= best_full[pair_row] * slack
    # Stage R2 — member refinement of the surviving (row, leaf) pairs
    # with the flat tier's exact bounds and exact cutoff, one flat pair
    # batch for all queries at once.
    srt = np.argsort(pair_row[keep1], kind="stable")
    kept_row = pair_row[keep1][srt]
    kept_on = pair_on[keep1][srt]
    gather2, lens2 = kernels.csr_segment_gather(otree.leaf_ptr, kept_on)
    mem_col = otree.leaf_flat[gather2]
    mem_row = np.repeat(kept_row, lens2)
    stats["refined_pairs"] += int(mem_row.shape[0])
    lb2, ub2 = columns.member_pair_bounds(
        Q[mem_row, 0], Q[mem_row, 1], mem_col, criterion
    )
    row_uniq, row_starts = np.unique(mem_row, return_index=True)
    if k == 1:
        kth = np.minimum.reduceat(ub2, row_starts)
    else:
        # Pad the ragged per-row segments into one (rows, maxlen)
        # matrix (every row has >= k real members, so +inf padding
        # never reaches the k-th slot) and reuse the flat selector.
        seg_lens = np.append(row_starts[1:], mem_row.shape[0]) - row_starts
        seg_ids = np.repeat(
            np.arange(row_uniq.shape[0], dtype=np.intp), seg_lens
        )
        in_seg = np.arange(mem_row.shape[0], dtype=np.intp) - np.repeat(
            row_starts, seg_lens
        )
        dense = np.full((row_uniq.shape[0], int(seg_lens.max())), np.inf)
        dense[seg_ids, in_seg] = ub2
        kth = _kth_smallest(dense, min(k, dense.shape[1]))
    cut_full = np.empty(Q.shape[0], dtype=np.float64)
    cut_full[row_uniq] = kth * slack
    keep2 = lb2 <= cut_full[mem_row]
    counts = np.add.reduceat(keep2.astype(np.intp), row_starts)
    # Ascending columns per row: rows are already grouped in ascending
    # order; sort the surviving columns within each row.
    fin = np.lexsort((mem_col[keep2], mem_row[keep2]))
    return row_uniq, counts, mem_col[keep2][fin]


def dual_tree_candidates(
    qs,
    columns,
    object_tree: Optional[EnvelopeObjectTree] = None,
    k: int = 1,
    criterion: str = "support",
    leaf_size: int = 32,
    fanout: int = 8,
    slack: float = _CUTOFF_SLACK,
    backend: str = "serial",
    workers: Optional[int] = None,
    tile_bytes: Optional[int] = None,
) -> DualTreeCandidates:
    """The dual-tree prune pass: CSR survivor sets for a query batch.

    Parameters
    ----------
    qs:
        Query matrix (anything :func:`as_query_array` accepts).
    columns:
        The :class:`~repro.uncertain.ModelColumns` store.
    object_tree:
        Optional prebuilt :class:`EnvelopeObjectTree` over ``columns``
        (built here when omitted; sessions cache one per generation).
    k / criterion:
        The prune test — survivors of query ``q`` are exactly the flat
        tier's ``lb_i(q) <= k``-th smallest ``ub_j(q)`` set, with
        ``criterion`` selecting the support or expected-distance
        bracket.
    backend / workers:
        ``"serial"`` or ``"thread"`` — threads fan out over query
        subtrees (the traversal's closures are not picklable, so the
        process backend is rejected exactly like the planner's tiles).
    tile_bytes:
        Peak-memory budget for the leaf refinement's per-pair
        temporaries (defaults to :data:`repro.config.EXECUTION`'s
        ``tile_bytes``): refinement runs in chunks of whole query-leaf
        segments sized to the budget, mirroring the planner's row
        tiles.
    """
    Q = kernels.as_query_array(qs)
    m = Q.shape[0]
    n = int(columns.n)
    k = min(max(int(k), 1), n)
    if criterion not in ("support", "expected"):
        raise QueryError(f"unknown pruning criterion {criterion!r}")
    if backend == "process":
        raise QueryError(
            "the dual-tree traversal's closures are not picklable; use "
            "parallel_backend='thread' (the process backend serves "
            "picklable workloads via repro.core.parallel.map_tiles)"
        )
    if object_tree is None:
        object_tree = EnvelopeObjectTree(columns, leaf_size, fanout)
    if object_tree.n != n:
        raise QueryError("object tree was built over a different column store")
    base_stats = {
        "node_pairs_visited": 0.0,
        "node_pairs_pruned": 0.0,
        "leaf_pairs": 0.0,
        "point_node_pairs": 0.0,
        "refined_pairs": 0.0,
        "survivors": 0.0,
        "traversal_tasks": 0.0,
        "query_tree_depth": 0.0,
        "object_tree_depth": float(object_tree.depth),
    }
    if m == 0:
        return DualTreeCandidates(
            np.zeros(1, dtype=np.intp), np.zeros(0, dtype=np.intp), base_stats
        )
    qtree = QueryBlockTree(Q, leaf_size, fanout)
    base_stats["query_tree_depth"] = float(qtree.depth)
    if tile_bytes is None:
        tile_bytes = EXECUTION.tile_bytes
    # ~128 simultaneous bytes per (query, member) refinement pair across
    # the bound kernels' float temporaries and the CSR index arrays.
    pair_budget = max(4096, int(tile_bytes) // 128)
    n_workers = _parallel.resolve_workers(workers)
    if backend == "thread" and qtree.depth > 1 and n_workers > 1:
        # Parallelize over query subtrees: each level-1 node descends
        # independently (its best-ub chain never reads a sibling's), so
        # chunked fan-out returns the same per-query survivors.
        nodes = np.arange(qtree.n_nodes(1), dtype=np.intp)
        chunks = np.array_split(nodes, min(n_workers, nodes.shape[0]))
        task_results = _parallel.map_ordered(
            lambda chunk: _traverse(
                Q, qtree, object_tree, columns, k, criterion, slack,
                chunk, 1, pair_budget,
            ),
            chunks,
            backend=backend,
            workers=n_workers,
        )
    else:
        task_results = [
            _traverse(
                Q,
                qtree,
                object_tree,
                columns,
                k,
                criterion,
                slack,
                np.zeros(1, dtype=np.intp),
                0,
                pair_budget,
            )
        ]
    for _, tstats in task_results:
        for key in (
            "node_pairs_visited",
            "node_pairs_pruned",
            "leaf_pairs",
            "point_node_pairs",
            "refined_pairs",
        ):
            base_stats[key] += float(tstats[key])
    # Tasks cover disjoint query rows; permute their concatenated CSR
    # segments back into query order.
    all_rows = np.concatenate([rows for (rows, _, _), _ in task_results])
    all_counts = np.concatenate([cnt for (_, cnt, _), _ in task_results])
    all_cols = np.concatenate([cols for (_, _, cols), _ in task_results])
    order = np.argsort(all_rows)  # all_rows is a permutation of range(m)
    task_indptr = np.zeros(all_rows.shape[0] + 1, dtype=np.intp)
    np.cumsum(all_counts, out=task_indptr[1:])
    gather, lens = kernels.csr_segment_gather(task_indptr, order)
    indices = all_cols[gather].astype(np.intp, copy=False)
    indptr = np.zeros(m + 1, dtype=np.intp)
    np.cumsum(lens, out=indptr[1:])
    base_stats["survivors"] = float(indptr[-1])
    base_stats["traversal_tasks"] = float(len(task_results))
    return DualTreeCandidates(indptr, indices, base_stats)
