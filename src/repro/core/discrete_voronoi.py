"""``V!=0(P)`` for discrete distributions (Section 2.2).

Lemma 2.13: for discrete points the curve ``gamma_ij`` is a convex
polygonal curve with O(k) vertices — it bounds the convex cell

    ``K_ij = { x : delta_i(x) >= Delta_j(x) }``
          ``= intersection over locations (a, b) of the halfplane``
            ``{ x : d(x, p_jb) <= d(x, p_ia) }``.

``gamma_i`` is the boundary of ``union_j K_ij``, and ``V!=0`` is the
arrangement of the ``gamma_i`` (Theorem 2.14: O(k n^3) complexity).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import GeometryError
from ..geometry.dcel import PlanarSubdivision
from ..geometry.halfplane import Halfplane, halfplane_intersection
from ..geometry.planarize import box_border_segments, planarize
from ..geometry.point import Point
from ..geometry.pointlocation import LabelledSubdivision
from ..geometry.polygon import point_in_convex_polygon
from .nonzero import UncertainSet

Bbox = Tuple[float, float, float, float]


def k_cell(points: Sequence, i: int, j: int, bbox: Bbox) -> List[Point]:
    """The convex cell ``K_ij`` clipped to ``bbox`` (Lemma 2.13).

    Empty when ``P_j`` can never dominate ``P_i`` inside the box.
    """
    pi, pj = points[i], points[j]
    if not (pi.is_discrete and pj.is_discrete):
        raise GeometryError("K_ij cells require discrete distributions")
    halfplanes = [
        Halfplane.bisector_side(b, a)
        for a in pi.locations
        for b in pj.locations
    ]
    return halfplane_intersection(halfplanes, bbox)


def gamma_polygon_edges(
    points: Sequence, i: int, bbox: Bbox
) -> List[Tuple[Tuple[float, float], Tuple[float, float]]]:
    """Edges of ``gamma_i`` = boundary of ``union_{j != i} K_ij``.

    Computed by planarising all cell boundaries of the ``K_ij`` and
    keeping the sub-edges not strictly interior to any other cell.
    Box-border artifacts from clipping are dropped.
    """
    cells = []
    for j in range(len(points)):
        if j == i:
            continue
        poly = k_cell(points, i, j, bbox)
        if len(poly) >= 3:
            cells.append(poly)
    if not cells:
        return []
    segments = []
    for poly in cells:
        for a, b in zip(poly, poly[1:] + poly[:1]):
            segments.append(((a.x, a.y), (b.x, b.y)))
    vertices, edges = planarize(segments)
    out = []
    eps = 1e-9 * max(abs(bbox[0]), abs(bbox[1]), abs(bbox[2]), abs(bbox[3]), 1.0)
    for (u, v) in edges:
        ax, ay = vertices[u]
        bx, by = vertices[v]
        mx, my = 0.5 * (ax + bx), 0.5 * (ay + by)
        if _on_box_border(mx, my, bbox, eps):
            continue
        strictly_inside = False
        for poly in cells:
            if point_in_convex_polygon((mx, my), poly, eps=-eps):
                strictly_inside = True
                break
        if not strictly_inside:
            out.append(((ax, ay), (bx, by)))
    return out


def _on_box_border(x: float, y: float, bbox: Bbox, eps: float) -> bool:
    return (
        abs(x - bbox[0]) <= eps
        or abs(x - bbox[2]) <= eps
        or abs(y - bbox[1]) <= eps
        or abs(y - bbox[3]) <= eps
    )


def discrete_gamma_census(points: Sequence, bbox: Optional[Bbox] = None) -> dict:
    """Vertex census of the arrangement of the discrete ``gamma_i``.

    Returns per-curve vertex counts and the total vertex count of the
    arrangement inside the working box — the complexity measure of
    Theorem 2.14.  Degree-2 vertices with collinear incident edges
    (artifacts of planarising collinear boundary pieces) are not counted.
    """
    uset = UncertainSet(points)
    if bbox is None:
        raw = uset.bounding_box()
        diag = math.hypot(raw[2] - raw[0], raw[3] - raw[1]) or 1.0
        m = 0.5 * diag
        bbox = (raw[0] - m, raw[1] - m, raw[2] + m, raw[3] + m)
    per_curve: List[int] = []
    all_edges = []
    for i in range(len(points)):
        edges = gamma_polygon_edges(points, i, bbox)
        per_curve.append(len(edges))
        all_edges.extend(edges)
    vertices, edges = planarize(all_edges)
    degree: Dict[int, List[int]] = defaultdict(list)
    for e, (u, v) in enumerate(edges):
        degree[u].append(v)
        degree[v].append(u)
    eps = 1e-9 * max(abs(bbox[0]), abs(bbox[1]), abs(bbox[2]), abs(bbox[3]), 1.0)
    count = 0
    for u, nbrs in degree.items():
        x, y = vertices[u]
        if _on_box_border(x, y, bbox, eps):
            continue
        if len(nbrs) >= 3:
            count += 1
        elif len(nbrs) == 2:
            (ax, ay), (bx, by) = vertices[nbrs[0]], vertices[nbrs[1]]
            cross = (ax - x) * (by - y) - (ay - y) * (bx - x)
            scale = math.hypot(ax - x, ay - y) * math.hypot(bx - x, by - y)
            if abs(cross) > 1e-9 * (scale + 1e-300):
                count += 1
    return {
        "arrangement_vertices": count,
        "gamma_edges_per_curve": per_curve,
        "bbox": bbox,
    }


class DiscreteNonzeroVoronoi:
    """Queryable ``V!=0(P)`` for discrete points (Theorem 2.14 product).

    Built as the arrangement refinement induced by all ``K_ij`` cell
    boundaries; every face is labelled with its exact ``NN!=0`` set by
    the Lemma 2.1 oracle, so labels are exact even where neighbouring
    refinement faces share them.
    """

    def __init__(self, points: Sequence, bbox: Optional[Bbox] = None):
        self.uset = UncertainSet(points)
        if not self.uset.all_discrete():
            raise GeometryError("DiscreteNonzeroVoronoi requires discrete points")
        if bbox is None:
            raw = self.uset.bounding_box()
            diag = math.hypot(raw[2] - raw[0], raw[3] - raw[1]) or 1.0
            m = 0.5 * diag
            bbox = (raw[0] - m, raw[1] - m, raw[2] + m, raw[3] + m)
        self.bbox = bbox
        segments = box_border_segments(*bbox)
        n = len(points)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                poly = k_cell(points, i, j, bbox)
                if len(poly) >= 3:
                    for a, b in zip(poly, poly[1:] + poly[:1]):
                        segments.append(((a.x, a.y), (b.x, b.y)))
        vertices, edges = planarize(segments)
        self.subdivision = PlanarSubdivision(vertices, edges)
        self.labels = self.subdivision.label_cycles(
            lambda x, y: self.uset.nonzero_nn((x, y))
        )
        self._located = LabelledSubdivision(
            self.subdivision, self.labels, outside_label=None
        )

    def query(self, q) -> FrozenSet[int]:
        label = self._located.query(q[0], q[1])
        if label is None:
            return self.uset.nonzero_nn(q)
        return label

    def complexity(self) -> dict:
        sub = self.subdivision
        return {
            "vertices": sub.num_vertices(),
            "edges": sub.num_edges(),
            "faces": sub.num_faces(),
            "distinct_labels": len(
                {l for l in self.labels if l is not None}
            ),
        }
