"""Guaranteed Voronoi diagram ([SE08], discussed in Section 1.2).

The cells of ``V!=0(P)`` on which ``NN!=0(q)`` is a singleton ``{P_i}``
form the *guaranteed Voronoi diagram*: there ``pi_i(q) = 1`` regardless
of the actual distributions, and [SE08] shows these cells have only
O(n) total complexity.  The membership predicate is
``Delta_i(q) < delta_j(q)``... more precisely ``delta_j(q) >= Delta(q)``
for every ``j != i``, i.e. ``q`` is closer to every point of ``D_i``
than it can possibly be to any other uncertain point.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence, Tuple

from .nonzero import UncertainSet


def guaranteed_owner(points: Sequence, q) -> Optional[int]:
    """Index ``i`` with ``NN!=0(q) = {P_i}``, or ``None``."""
    members = UncertainSet(points).nonzero_nn(q)
    if len(members) == 1:
        return next(iter(members))
    return None


def is_guaranteed(points: Sequence, i: int, q) -> bool:
    """True when ``P_i`` is the nearest neighbor of ``q`` with certainty."""
    return guaranteed_owner(points, q) == i


def guaranteed_area_estimate(
    points: Sequence,
    bbox: Tuple[float, float, float, float],
    samples: int = 20_000,
    seed: int = 0,
) -> dict:
    """Monte-Carlo area of each guaranteed cell within ``bbox``.

    Returns per-point areas plus the fraction of the box where no point
    is guaranteed (the "contested" region where ``|NN!=0| >= 2``).
    """
    rng = random.Random(seed)
    uset = UncertainSet(points)
    xmin, ymin, xmax, ymax = bbox
    box_area = (xmax - xmin) * (ymax - ymin)
    counts = [0] * len(uset)
    contested = 0
    for _ in range(samples):
        q = (rng.uniform(xmin, xmax), rng.uniform(ymin, ymax))
        members = uset.nonzero_nn(q)
        if len(members) == 1:
            counts[next(iter(members))] += 1
        else:
            contested += 1
    return {
        "areas": [c / samples * box_area for c in counts],
        "contested_fraction": contested / samples,
    }
