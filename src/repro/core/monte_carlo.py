"""The Monte-Carlo PNN structure (Section 4.2).

Preprocessing draws ``s`` instantiations ``R_1..R_s`` of the uncertain
set and indexes each for nearest-site location (the paper builds
``Vor(R_j)`` + point location; a kd-tree or the Delaunay-walk locator of
:mod:`repro.geometry.voronoi` are interchangeable here).  A query
counts, over the rounds, how often each point is the instantiated
nearest neighbor: ``pihat_i(q) = c_i / s``.

Theorems 4.3 (discrete) and 4.5 (continuous) choose

    ``s = (1 / (2 eps^2)) * ln(2 n |Q| / delta)``

to make ``|pihat_i(q) - pi_i(q)| <= eps`` hold for *all* queries
simultaneously with probability ``1 - delta``, where ``|Q| = O(N^4)``
counts the cells of ``VPr``.  For a *fixed* query the Chernoff bound
needs only ``s = (1 / (2 eps^2)) * ln(2 n / delta)``; both formulas are
provided.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import SeedLike, default_rng
from ..errors import QueryError
from ..geometry import kernels
from ..geometry.voronoi import VoronoiLocator
from ..index.kdtree import KdTree
from .nonzero import UncertainSet


def rounds_for_fixed_query(epsilon: float, delta: float, n: int) -> int:
    """Chernoff-bound rounds for a per-query guarantee (Eq. (6) + union
    bound over the n points only)."""
    _check(epsilon, delta)
    return max(1, math.ceil(math.log(2.0 * n / delta) / (2.0 * epsilon * epsilon)))


def rounds_for_all_queries(
    epsilon: float, delta: float, n: int, k: int
) -> int:
    """Theorem 4.3 rounds: union bound over one representative per cell
    of ``VPr`` (``|Q| = O((nk)^4)``, Lemma 4.1)."""
    _check(epsilon, delta)
    q_cells = float(n * k) ** 4 + 1.0
    return max(
        1,
        math.ceil(
            math.log(2.0 * n * q_cells / delta) / (2.0 * epsilon * epsilon)
        ),
    )


def _check(epsilon: float, delta: float) -> None:
    if not (0.0 < epsilon < 1.0) or not (0.0 < delta < 1.0):
        raise QueryError("epsilon and delta must lie in (0, 1)")


class MonteCarloPNN:
    """The s-round instantiation structure of Theorems 4.3 / 4.5.

    Works uniformly for discrete and continuous distributions — the
    continuous case *is* the discrete algorithm run on continuous draws
    (Section 4.2's reduction shows the guarantee carries over).

    Parameters
    ----------
    points:
        Uncertain points (any mix of models).
    s:
        Number of rounds; if omitted it is derived from ``epsilon`` /
        ``delta`` with the per-query bound.
    locator:
        ``"kdtree"`` (default) or ``"voronoi"`` — the per-round
        nearest-site structure.  Both give identical answers; the
        Voronoi locator mirrors the paper's ``Vor(R_j)`` literally.
    rng:
        Optional seed-like value (int / ``numpy.random.Generator`` /
        ``random.Random``) for the new vectorized instantiation path:
        all ``s`` rounds are drawn as one ``(s, n, 2)`` array through
        the models' ``sample_many``.  When omitted, the legacy
        ``random.Random(seed)`` scalar stream is used, preserving the
        exact instantiations of earlier releases.

    The per-round locators are built lazily on the first scalar
    :meth:`query`; the batch :meth:`query_many` works directly off the
    ``(s, n, 2)`` instantiation array and never needs them.
    """

    def __init__(
        self,
        points: Sequence,
        s: Optional[int] = None,
        epsilon: Optional[float] = None,
        delta: float = 0.05,
        seed: int = 0,
        locator: str = "kdtree",
        rng: Optional[SeedLike] = None,
    ):
        self.uset = UncertainSet(points)
        n = len(self.uset)
        if s is None:
            if epsilon is None:
                raise QueryError("provide either s or epsilon")
            s = rounds_for_fixed_query(epsilon, delta, n)
        self.s = int(s)
        self.epsilon = epsilon
        self.delta = delta
        if locator not in ("kdtree", "voronoi"):
            raise QueryError(f"unknown locator {locator!r}")
        if rng is not None:
            self._samples = self.uset.instantiate_many(default_rng(rng), self.s)
        else:
            legacy = random.Random(seed)
            self._samples = np.asarray(
                [self.uset.instantiate(legacy) for _ in range(self.s)],
                dtype=np.float64,
            )
        self._locators: Optional[List] = None
        self._locator_kind = locator

    @property
    def samples(self) -> np.ndarray:
        """The stored instantiations ``R_1..R_s`` as an ``(s, n, 2)`` array."""
        return self._samples

    def _built_locators(self) -> List:
        if self._locators is None:
            self._locators = [
                KdTree(sample)
                if self._locator_kind == "kdtree"
                else VoronoiLocator([tuple(p) for p in sample])
                for sample in self._samples
            ]
        return self._locators

    # -- queries -------------------------------------------------------------
    def query(self, q) -> Dict[int, float]:
        """``{ i : pihat_i(q) }`` for the at most ``s`` points with a
        nonzero counter; all other estimates are implicitly 0."""
        counts: Dict[int, int] = {}
        if self._locator_kind == "kdtree":
            for tree in self._built_locators():
                i, _ = tree.nearest(q)
                counts[i] = counts.get(i, 0) + 1
        else:
            hint = None
            for loc in self._built_locators():
                i = loc.nearest(q, hint=hint)
                hint = i
                counts[i] = counts.get(i, 0) + 1
        return {i: c / self.s for i, c in counts.items()}

    def query_matrix(self, qs, planner=None) -> np.ndarray:
        """``pihat`` estimates for an ``(m, 2)`` query matrix, ``(m, n)``.

        The vectorized engine behind :meth:`query_many`: each round's
        instantiation is compared against *all* queries in one
        ``(m, n)`` squared-distance kernel and the winner counted with a
        vectorized argmin — no per-query tree walks.

        With a :class:`repro.QueryPlanner` (built over the same points),
        each query is first reduced to its candidate set — an object
        with ``dmin(q) > min_j dmax_j(q)`` can never be the instantiated
        nearest neighbor in *any* round, so only candidate distances are
        computed (CSR layout, segment argmins) and the estimates are
        identical to the unpruned pass over the same stored
        instantiations.
        """
        Q = kernels.as_query_array(qs)
        m = Q.shape[0]
        n = self._samples.shape[1]
        if planner is not None:
            if len(planner) != n:
                raise QueryError(
                    "planner was built over a different point set"
                )
            return self._query_matrix_pruned(Q, planner)
        winners = np.empty((self.s, m), dtype=np.intp)
        for j in range(self.s):
            d2 = kernels.pairwise_sq_distances(Q, self._samples[j])
            winners[j] = d2.argmin(axis=1)
        offsets = winners + np.arange(m, dtype=np.intp)[None, :] * n
        counts = np.bincount(offsets.ravel(), minlength=m * n).reshape(m, n)
        return counts / float(self.s)

    def _query_matrix_pruned(self, Q: np.ndarray, planner) -> np.ndarray:
        """Candidate-only rounds over the shared ``(s, n, 2)`` array.

        The candidate pairs are laid out once in CSR order (row-major
        ``np.nonzero``, so columns ascend within each query); every
        round gathers only those pairs' coordinates and finds each
        query's winner with two ``np.minimum.reduceat`` segment passes.
        Ties resolve to the lowest surviving column — the same winner
        the full argmin picks, since pruned objects are strictly
        farther in every round.
        """
        m = Q.shape[0]
        n = self._samples.shape[1]
        if m == 0:
            return np.zeros((0, n), dtype=np.float64)
        mask = planner.candidate_mask(Q, criterion="support")
        rows, cols = np.nonzero(mask)
        nnz = rows.shape[0]
        indptr = np.searchsorted(rows, np.arange(m))
        qx = Q[rows, 0]
        qy = Q[rows, 1]
        sx = np.ascontiguousarray(self._samples[:, :, 0])
        sy = np.ascontiguousarray(self._samples[:, :, 1])
        pair_pos = np.arange(nnz, dtype=np.intp)
        winners = np.empty((self.s, m), dtype=np.intp)
        for j in range(self.s):
            dx = qx - sx[j, cols]
            dy = qy - sy[j, cols]
            d2 = dx * dx + dy * dy
            minv = np.minimum.reduceat(d2, indptr)
            pos = np.where(d2 == minv[rows], pair_pos, nnz)
            winners[j] = cols[np.minimum.reduceat(pos, indptr)]
        offsets = winners + np.arange(m, dtype=np.intp)[None, :] * n
        counts = np.bincount(offsets.ravel(), minlength=m * n).reshape(m, n)
        return counts / float(self.s)

    def query_many(self, qs, planner=None) -> List[Dict[int, float]]:
        """Batched :meth:`query`: one sparse ``{i: pihat_i}`` dict per row
        of the ``(m, 2)`` query matrix.  ``planner`` routes through the
        pruned candidate engine (identical estimates)."""
        est = self.query_matrix(qs, planner=planner)
        out: List[Dict[int, float]] = []
        for row in est:
            nz = np.nonzero(row)[0]
            out.append({int(i): float(row[i]) for i in nz})
        return out

    def estimate(self, q, i: int) -> float:
        """``pihat_i(q)`` for one point."""
        return self.query(q).get(i, 0.0)

    def query_vector(self, q) -> List[float]:
        est = self.query(q)
        return [est.get(i, 0.0) for i in range(len(self.uset))]

    # -- introspection -----------------------------------------------------------
    def space_estimate(self) -> int:
        """Stored instantiation count: ``s * n`` points (Theorem 4.3's
        O((n / eps^2) log(nk / delta)) space)."""
        return self.s * len(self.uset)
