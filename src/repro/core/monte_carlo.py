"""The Monte-Carlo PNN structure (Section 4.2).

Preprocessing draws ``s`` instantiations ``R_1..R_s`` of the uncertain
set and indexes each for nearest-site location (the paper builds
``Vor(R_j)`` + point location; a kd-tree or the Delaunay-walk locator of
:mod:`repro.geometry.voronoi` are interchangeable here).  A query
counts, over the rounds, how often each point is the instantiated
nearest neighbor: ``pihat_i(q) = c_i / s``.

Theorems 4.3 (discrete) and 4.5 (continuous) choose

    ``s = (1 / (2 eps^2)) * ln(2 n |Q| / delta)``

to make ``|pihat_i(q) - pi_i(q)| <= eps`` hold for *all* queries
simultaneously with probability ``1 - delta``, where ``|Q| = O(N^4)``
counts the cells of ``VPr``.  For a *fixed* query the Chernoff bound
needs only ``s = (1 / (2 eps^2)) * ln(2 n / delta)``; both formulas are
provided.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import EXECUTION, SeedLike, default_rng
from ..errors import QueryError
from .. import resilience as _resilience
from ..geometry import kernels
from ..geometry.voronoi import VoronoiLocator
from ..index.kdtree import KdTree
from .nonzero import UncertainSet


def _round_block(nnz: int, planner=None) -> int:
    """Monte-Carlo rounds per vectorized block: as many rounds as keep
    the block's ~6 simultaneous ``(rounds, nnz)`` float64 temporaries
    inside the ``tile_bytes`` working-set budget."""
    tb = getattr(planner, "tile_bytes", None)
    if tb is None:
        tb = EXECUTION.tile_bytes
    return max(1, int(tb) // max(int(nnz) * 8 * 6, 1))


def rounds_for_fixed_query(epsilon: float, delta: float, n: int) -> int:
    """Chernoff-bound rounds for a per-query guarantee (Eq. (6) + union
    bound over the n points only)."""
    _check(epsilon, delta)
    return max(1, math.ceil(math.log(2.0 * n / delta) / (2.0 * epsilon * epsilon)))


def rounds_for_all_queries(
    epsilon: float, delta: float, n: int, k: int
) -> int:
    """Theorem 4.3 rounds: union bound over one representative per cell
    of ``VPr`` (``|Q| = O((nk)^4)``, Lemma 4.1)."""
    _check(epsilon, delta)
    q_cells = float(n * k) ** 4 + 1.0
    return max(
        1,
        math.ceil(
            math.log(2.0 * n * q_cells / delta) / (2.0 * epsilon * epsilon)
        ),
    )


def _check(epsilon: float, delta: float) -> None:
    if not (0.0 < epsilon < 1.0) or not (0.0 < delta < 1.0):
        raise QueryError("epsilon and delta must lie in (0, 1)")


class MonteCarloPNN:
    """The s-round instantiation structure of Theorems 4.3 / 4.5.

    Works uniformly for discrete and continuous distributions — the
    continuous case *is* the discrete algorithm run on continuous draws
    (Section 4.2's reduction shows the guarantee carries over).

    Parameters
    ----------
    points:
        Uncertain points (any mix of models).
    s:
        Number of rounds; if omitted it is derived from ``epsilon`` /
        ``delta`` with the per-query bound.
    locator:
        ``"kdtree"`` (default) or ``"voronoi"`` — the per-round
        nearest-site structure.  Both give identical answers; the
        Voronoi locator mirrors the paper's ``Vor(R_j)`` literally.
    rng:
        Optional seed-like value (int / ``numpy.random.Generator`` /
        ``random.Random``) for the new vectorized instantiation path:
        all ``s`` rounds are drawn as one ``(s, n, 2)`` array through
        the models' ``sample_many``.  When omitted, the legacy
        ``random.Random(seed)`` scalar stream is used, preserving the
        exact instantiations of earlier releases.
    samples:
        Optional precomputed ``(s, n, 2)`` instantiation block (as drawn
        by :meth:`repro.UncertainSet.instantiate_many`) — the
        :class:`repro.Engine` registry keys these blocks by
        ``(s, seed)`` and shares one block across the PNN and kNN
        estimators instead of redrawing per structure.  Must match ``s``
        and ``n``; ``rng`` / ``seed`` are ignored when given.
    uset:
        Optional :class:`UncertainSet` over the same points, adopted
        instead of building a fresh one.

    The per-round locators are built lazily on the first scalar
    :meth:`query`; the batch :meth:`query_many` works directly off the
    ``(s, n, 2)`` instantiation array and never needs them.
    """

    def __init__(
        self,
        points: Sequence,
        s: Optional[int] = None,
        epsilon: Optional[float] = None,
        delta: float = 0.05,
        seed: int = 0,
        locator: str = "kdtree",
        rng: Optional[SeedLike] = None,
        samples: Optional[np.ndarray] = None,
        uset: Optional[UncertainSet] = None,
    ):
        self.uset = uset if uset is not None else UncertainSet(points)
        n = len(self.uset)
        if s is None and samples is not None:
            s = samples.shape[0]
        if s is None:
            if epsilon is None:
                raise QueryError("provide either s or epsilon")
            s = rounds_for_fixed_query(epsilon, delta, n)
        self.s = int(s)
        self.epsilon = epsilon
        self.delta = delta
        if locator not in ("kdtree", "voronoi"):
            raise QueryError(f"unknown locator {locator!r}")
        if samples is not None:
            if samples.shape != (self.s, n, 2):
                raise QueryError(
                    f"samples must have shape {(self.s, n, 2)}, "
                    f"got {samples.shape}"
                )
            self._samples = samples
        elif rng is not None:
            self._samples = self.uset.instantiate_many(default_rng(rng), self.s)
        else:
            legacy = random.Random(seed)
            self._samples = np.asarray(
                [self.uset.instantiate(legacy) for _ in range(self.s)],
                dtype=np.float64,
            )
        self._locators: Optional[List] = None
        self._locator_kind = locator

    @property
    def samples(self) -> np.ndarray:
        """The stored instantiations ``R_1..R_s`` as an ``(s, n, 2)`` array."""
        return self._samples

    def _built_locators(self) -> List:
        if self._locators is None:
            self._locators = [
                KdTree(sample)
                if self._locator_kind == "kdtree"
                else VoronoiLocator([tuple(p) for p in sample])
                for sample in self._samples
            ]
        return self._locators

    # -- queries -------------------------------------------------------------
    def query(self, q) -> Dict[int, float]:
        """``{ i : pihat_i(q) }`` for the at most ``s`` points with a
        nonzero counter; all other estimates are implicitly 0."""
        counts: Dict[int, int] = {}
        if self._locator_kind == "kdtree":
            for tree in self._built_locators():
                i, _ = tree.nearest(q)
                counts[i] = counts.get(i, 0) + 1
        else:
            hint = None
            for loc in self._built_locators():
                i = loc.nearest(q, hint=hint)
                hint = i
                counts[i] = counts.get(i, 0) + 1
        return {i: c / self.s for i, c in counts.items()}

    def query_matrix(
        self,
        qs,
        planner=None,
        adaptive: bool = False,
        tol: Optional[float] = None,
        delta: float = 0.05,
        min_rounds: int = 16,
        check_every: int = 16,
        return_rounds: bool = False,
    ) -> np.ndarray:
        """``pihat`` estimates for an ``(m, 2)`` query matrix, ``(m, n)``.

        The vectorized engine behind :meth:`query_many`: each round's
        instantiation is compared against *all* queries in one
        ``(m, n)`` squared-distance kernel and the winner counted with a
        vectorized argmin — no per-query tree walks.

        With a :class:`repro.QueryPlanner` (built over the same points),
        each query is first reduced to its candidate set — an object
        with ``dmin(q) > min_j dmax_j(q)`` can never be the instantiated
        nearest neighbor in *any* round, so only candidate distances are
        computed (CSR layout, segment argmins) and the estimates are
        identical to the unpruned pass over the same stored
        instantiations.

        ``adaptive=True`` turns on per-query empirical-Bernstein early
        stopping: rounds are consumed in blocks of ``check_every`` (in
        the stored order, so the procedure is deterministic), and after
        each block a query whose estimate-confidence half-width

            ``hw = sqrt(2 Vhat ln(3/delta) / t) + 3 ln(3/delta) / t``

        (``Vhat`` the largest empirical Bernoulli variance
        ``pihat (1 - pihat)`` over its objects, ``t`` the rounds used so
        far, at least ``min_rounds``) drops below ``tol`` stops drawing
        — easy queries far from any quantification boundary finish
        after a few rounds, hard ones use all ``s``.  Each row of the
        result is normalised by the rounds that query consumed;
        ``return_rounds=True`` additionally returns that ``(m,)`` count
        vector.  With ``adaptive=False`` (default) the exact fixed-``s``
        behavior of earlier releases is preserved bit for bit.
        """
        Q = kernels.as_query_array(qs)
        m = Q.shape[0]
        n = self._samples.shape[1]
        if planner is not None and len(planner) != n:
            raise QueryError("planner was built over a different point set")
        if adaptive:
            return self._query_matrix_adaptive(
                Q, planner, tol, delta, min_rounds, check_every, return_rounds
            )
        if planner is not None:
            est = self._query_matrix_pruned(Q, planner)
            return (est, np.full(m, self.s, dtype=np.intp)) if return_rounds else est
        _resilience.require_bytes(
            self.s * m * np.dtype(np.intp).itemsize + m * n * 8,
            f"Monte-Carlo winner/count matrices (s={self.s}, m={m}, n={n})",
        )
        winners = np.empty((self.s, m), dtype=np.intp)
        for j in range(self.s):
            _resilience.checkpoint("mc.round", j)
            d2 = kernels.pairwise_sq_distances(Q, self._samples[j])
            winners[j] = d2.argmin(axis=1)
        offsets = winners + np.arange(m, dtype=np.intp)[None, :] * n
        counts = np.bincount(offsets.ravel(), minlength=m * n).reshape(m, n)
        est = counts / float(self.s)
        return (est, np.full(m, self.s, dtype=np.intp)) if return_rounds else est

    def _query_matrix_adaptive(
        self,
        Q: np.ndarray,
        planner,
        tol: Optional[float],
        delta: float,
        min_rounds: int,
        check_every: int,
        return_rounds: bool,
    ):
        """Blockwise rounds with per-query empirical-Bernstein stopping."""
        if tol is None or not tol > 0.0:
            raise QueryError("adaptive stopping requires tol > 0")
        if not 0.0 < delta < 1.0:
            raise QueryError("delta must lie in (0, 1)")
        m = Q.shape[0]
        n = self._samples.shape[1]
        _resilience.require_bytes(
            m * n * 8,
            f"Monte-Carlo count matrix (m={m}, n={n})",
        )
        min_rounds = max(1, min(int(min_rounds), self.s))
        check_every = max(1, int(check_every))
        rounds_used = np.zeros(m, dtype=np.intp)
        active = np.arange(m, dtype=np.intp)
        if planner is not None:
            # CSR candidate layout (and per-pair win counters) taken
            # straight from the planner's survivor sets (the dual-tree
            # generator emits CSR natively — no (m, n) boolean is ever
            # densified here); per block only the active queries'
            # segments are gathered — O(active nnz) work.
            indptr_full, cols_full = planner.candidate_csr(
                Q, criterion="support"
            )
            rows_full = kernels.csr_rows(indptr_full)
            pair_counts = np.zeros(rows_full.shape[0], dtype=np.int64)
        else:
            counts = np.zeros((m, n), dtype=np.int64)
        sx = np.ascontiguousarray(self._samples[:, :, 0])
        sy = np.ascontiguousarray(self._samples[:, :, 1])
        L = math.log(3.0 / delta)
        t = 0
        while t < self.s and active.size:
            # First block runs straight to min_rounds (the first stopping
            # check), then one check per check_every rounds.
            t1 = min(self.s, min_rounds if t < min_rounds else t + check_every)
            Qa = Q[active]
            if planner is None:
                for j in range(t, t1):
                    _resilience.checkpoint("mc.round", j)
                    d2 = kernels.pairwise_sq_distances(Qa, self._samples[j])
                    counts[active, d2.argmin(axis=1)] += 1
            else:
                gather, lens = kernels.csr_segment_gather(indptr_full, active)
                nnz = gather.shape[0]
                cols = cols_full[gather]
                rows = np.repeat(np.arange(active.size, dtype=np.intp), lens)
                indptr = np.concatenate(([0], np.cumsum(lens)[:-1])).astype(
                    np.intp
                )
                qx = Qa[rows, 0]
                qy = Qa[rows, 1]
                pair_pos = np.arange(nnz, dtype=np.intp)
                # Blocked rounds, as in _query_matrix_pruned; the win
                # tallies accumulate with np.add.at because a pair can
                # win several rounds inside one block.
                for j0 in range(t, t1, _round_block(nnz, planner)):
                    _resilience.checkpoint("mc.round", j0)
                    j1 = min(j0 + _round_block(nnz, planner), t1)
                    dx = qx[None, :] - sx[j0:j1][:, cols]
                    dy = qy[None, :] - sy[j0:j1][:, cols]
                    d2 = dx * dx + dy * dy
                    minv = np.minimum.reduceat(d2, indptr, axis=1)
                    pos = np.where(d2 == minv[:, rows], pair_pos[None, :], nnz)
                    idx = gather[np.minimum.reduceat(pos, indptr, axis=1)]
                    np.add.at(pair_counts, idx.ravel(), 1)
            rounds_used[active] += t1 - t
            t = t1
            if t >= min_rounds:
                # Empirical-Bernstein half-width from the largest
                # per-object Bernoulli variance c (t - c) / t^2; objects
                # that never won (every non-candidate) contribute 0.
                if planner is None:
                    c = counts[active]
                    v = (c * (t - c)).max(axis=1) / float(t) ** 2
                else:
                    cv = pair_counts[gather]
                    v = (
                        np.maximum.reduceat(cv * (t - cv), indptr)
                        if nnz
                        else np.zeros(active.size, dtype=np.int64)
                    ) / float(t) ** 2
                hw = np.sqrt(2.0 * v * L / t) + 3.0 * L / t
                active = active[hw >= tol]
        if planner is not None:
            counts = np.zeros((m, n), dtype=np.int64)
            counts[rows_full, cols_full] = pair_counts
        est = counts / np.maximum(rounds_used, 1).astype(np.float64)[:, None]
        return (est, rounds_used) if return_rounds else est

    def _query_matrix_pruned(self, Q: np.ndarray, planner) -> np.ndarray:
        """Candidate-only rounds over the shared ``(s, n, 2)`` array.

        The candidate pairs arrive in the planner's CSR layout (columns
        ascend within each query; the dual-tree generator emits this
        directly, with no dense (m, n) mask in between); every round
        gathers only those pairs' coordinates and finds each query's
        winner with two ``np.minimum.reduceat`` segment passes.  Ties
        resolve to the lowest surviving column — the same winner the
        full argmin picks, since pruned objects are strictly farther in
        every round.
        """
        m = Q.shape[0]
        n = self._samples.shape[1]
        if m == 0:
            return np.zeros((0, n), dtype=np.float64)
        _resilience.require_bytes(
            self.s * m * np.dtype(np.intp).itemsize + m * n * 8,
            f"Monte-Carlo winner/count matrices (s={self.s}, m={m}, n={n})",
        )
        indptr_full, cols = planner.candidate_csr(Q, criterion="support")
        rows = kernels.csr_rows(indptr_full)
        nnz = cols.shape[0]
        indptr = indptr_full[:-1]
        qx = Q[rows, 0]
        qy = Q[rows, 1]
        sx = np.ascontiguousarray(self._samples[:, :, 0])
        sy = np.ascontiguousarray(self._samples[:, :, 1])
        pair_pos = np.arange(nnz, dtype=np.intp)
        winners = np.empty((self.s, m), dtype=np.intp)
        # Rounds run in blocks (axis-1 segment reductions over a
        # (rounds, nnz) gather) so the per-round Python dispatch
        # amortizes away; blocking cannot change any winner — the
        # squared distances are computed elementwise from the same
        # floats and min is exact.
        for j0 in range(0, self.s, _round_block(nnz, planner)):
            _resilience.checkpoint("mc.round", j0)
            j1 = min(j0 + _round_block(nnz, planner), self.s)
            dx = qx[None, :] - sx[j0:j1][:, cols]
            dy = qy[None, :] - sy[j0:j1][:, cols]
            d2 = dx * dx + dy * dy
            minv = np.minimum.reduceat(d2, indptr, axis=1)
            pos = np.where(d2 == minv[:, rows], pair_pos[None, :], nnz)
            winners[j0:j1] = cols[np.minimum.reduceat(pos, indptr, axis=1)]
        offsets = winners + np.arange(m, dtype=np.intp)[None, :] * n
        counts = np.bincount(offsets.ravel(), minlength=m * n).reshape(m, n)
        return counts / float(self.s)

    def query_many(
        self,
        qs,
        planner=None,
        adaptive: bool = False,
        tol: Optional[float] = None,
        delta: float = 0.05,
    ) -> List[Dict[int, float]]:
        """Batched :meth:`query`: one sparse ``{i: pihat_i}`` dict per row
        of the ``(m, 2)`` query matrix.  ``planner`` routes through the
        pruned candidate engine (identical estimates); ``adaptive`` /
        ``tol`` turn on empirical-Bernstein early stopping (see
        :meth:`query_matrix`)."""
        est = self.query_matrix(
            qs, planner=planner, adaptive=adaptive, tol=tol, delta=delta
        )
        out: List[Dict[int, float]] = []
        for row in est:
            nz = np.nonzero(row)[0]
            out.append({int(i): float(row[i]) for i in nz})
        return out

    def estimate(self, q, i: int) -> float:
        """``pihat_i(q)`` for one point."""
        return self.query(q).get(i, 0.0)

    def query_vector(self, q) -> List[float]:
        est = self.query(q)
        return [est.get(i, 0.0) for i in range(len(self.uset))]

    # -- introspection -----------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Memory footprint of the stored instantiation block."""
        return int(self._samples.nbytes)

    def space_estimate(self) -> int:
        """Stored instantiation count: ``s * n`` points (Theorem 4.3's
        O((n / eps^2) log(nk / delta)) space)."""
        return self.s * len(self.uset)
