"""Nonzero nearest neighbors: definitions and the exact oracle.

Lemma 2.1: ``P_i`` belongs to ``NN!=0(q, P)`` iff
``delta_i(q) < Delta_j(q)`` for every ``j``, equivalently (Eq. (4))
``delta_i(q) < Delta(q)`` where ``Delta`` is the lower envelope of the
``Delta_j``.  The oracle here evaluates that predicate directly in O(n)
and serves as ground truth for every index and subdivision in the
library.
"""

from __future__ import annotations

import math
import random
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..config import SeedLike, default_rng
from ..errors import QueryError
from ..geometry import kernels
from ..uncertain.base import UncertainPoint


class UncertainSet:
    """A set ``P = {P_1, ..., P_n}`` of uncertain points.

    Thin container giving the core algorithms a uniform view: indexed
    access, vectorised ``delta``/``Delta`` evaluation, and the brute-force
    ``NN!=0`` oracle.

    ``copy=False`` adopts the caller's list without copying — the
    :class:`repro.Engine` session shares one canonical point list across
    every structure in its registry (the engine rebinds, never mutates,
    that list on dynamic updates, so adopted views stay consistent).
    """

    def __init__(self, points: Sequence[UncertainPoint], copy: bool = True):
        self.points: List[UncertainPoint] = (
            list(points) if copy or not isinstance(points, list) else points
        )
        if not self.points:
            raise QueryError("UncertainSet requires at least one point")

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, i: int) -> UncertainPoint:
        return self.points[i]

    def __iter__(self):
        return iter(self.points)

    # -- envelope values ------------------------------------------------------
    def delta(self, i: int, q) -> float:
        """``delta_i(q)``, the minimum distance from ``q`` to ``P_i``."""
        return self.points[i].dmin(q)

    def big_delta(self, i: int, q) -> float:
        """``Delta_i(q)``, the maximum distance from ``q`` to ``P_i``."""
        return self.points[i].dmax(q)

    def envelope(self, q) -> Tuple[int, float]:
        """``(argmin, Delta(q))`` — the lower envelope of the ``Delta_i``.

        The projection of the graph of ``Delta`` is the additively
        weighted Voronoi diagram ``M`` of Section 2.1.
        """
        best_i, best = 0, math.inf
        for i, p in enumerate(self.points):
            v = p.dmax(q)
            if v < best:
                best_i, best = i, v
        return best_i, best

    def _envelope_two(self, q) -> Tuple[int, float, float]:
        """``(argmin, min, second-min)`` of the ``Delta_j(q)`` values.

        Lemma 2.1 quantifies over ``j != i``, so testing point ``i``
        needs ``min_{j != i} Delta_j``: the global minimum unless ``i``
        itself attains it, in which case the second minimum.
        """
        best_i, best, second = -1, math.inf, math.inf
        for i, p in enumerate(self.points):
            v = p.dmax(q)
            if v < best:
                best_i, second, best = i, best, v
            elif v < second:
                second = v
        return best_i, best, second

    # -- the oracle --------------------------------------------------------------
    def nonzero_nn(self, q) -> FrozenSet[int]:
        """``NN!=0(q, P)`` as a frozen set of indices (Lemma 2.1)."""
        arg, best, second = self._envelope_two(q)
        return frozenset(
            i
            for i, p in enumerate(self.points)
            if p.dmin(q) < (second if i == arg else best)
        )

    def is_nonzero_nn(self, i: int, q) -> bool:
        """True iff ``pi_i(q) > 0`` (membership form of Lemma 2.1)."""
        di = self.points[i].dmin(q)
        return all(
            di < p.dmax(q) for j, p in enumerate(self.points) if j != i
        )

    # -- batch API ------------------------------------------------------------
    def dmin_matrix(self, qs) -> np.ndarray:
        """``delta_i(q)`` for every query/point pair, shape ``(m, n)``."""
        Q = kernels.as_query_array(qs)
        return np.column_stack([p.dmin_many(Q) for p in self.points])

    def dmax_matrix(self, qs) -> np.ndarray:
        """``Delta_i(q)`` for every query/point pair, shape ``(m, n)``."""
        Q = kernels.as_query_array(qs)
        return np.column_stack([p.dmax_many(Q) for p in self.points])

    def envelope_many(self, qs) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`envelope`: ``(argmins, Delta(q) values)``."""
        dmaxs = self.dmax_matrix(qs)
        arg = dmaxs.argmin(axis=1)
        return arg, dmaxs[np.arange(dmaxs.shape[0]), arg]

    def nonzero_nn_many(self, qs) -> List[FrozenSet[int]]:
        """Batched :meth:`nonzero_nn` (Lemma 2.1 for a query matrix).

        One ``(m, n)`` dmin and one dmax matrix replace the ``2 m n``
        scalar extremal-distance calls of the query loop.
        """
        return nonzero_from_matrices(self.dmin_matrix(qs), self.dmax_matrix(qs))

    def instantiate_many(self, rng: SeedLike, s: int) -> np.ndarray:
        """``s`` random instantiations of every point, shape ``(s, n, 2)``.

        Draws each point's ``s`` locations with one vectorized
        ``sample_many`` call (per-point columns, not per-round rows — the
        joint distribution is the same by independence, but the stream
        order differs from looping :meth:`instantiate`).
        """
        g = default_rng(rng)
        out = np.empty((s, len(self.points), 2), dtype=np.float64)
        for i, p in enumerate(self.points):
            out[:, i, :] = p.sample_many(g, s)
        return out

    # -- misc helpers ---------------------------------------------------------------
    def bounding_box(self, margin: float = 0.0) -> Tuple[float, float, float, float]:
        """Bounding box of all supports, inflated by ``margin``."""
        boxes = [p.support_bbox() for p in self.points]
        return (
            min(b[0] for b in boxes) - margin,
            min(b[1] for b in boxes) - margin,
            max(b[2] for b in boxes) + margin,
            max(b[3] for b in boxes) + margin,
        )

    def instantiate(self, rng: random.Random) -> List[Tuple[float, float]]:
        """One random instantiation of every point (Section 4.2)."""
        return [p.sample(rng) for p in self.points]

    def all_discrete(self) -> bool:
        return all(p.is_discrete for p in self.points)

    def max_description_complexity(self) -> int:
        """``k``: the largest discrete support size (1 for continuous)."""
        return max(
            (len(p.locations) if p.is_discrete else 1) for p in self.points
        )


def nonzero_from_matrices(
    dmins: np.ndarray, dmaxs: np.ndarray
) -> List[FrozenSet[int]]:
    """Lemma 2.1 from precomputed ``(m, n)`` extremal-distance matrices.

    Shared by the brute-force batch oracle and the pruned planner path
    (which fills non-candidate entries with ``+inf``; by the pruning
    invariant the minimum and second minimum of each ``dmax`` row are
    always attained at candidates, so the thresholds are unchanged).
    """
    m = dmins.shape[0]
    order = np.argsort(dmaxs, axis=1, kind="stable")
    best = dmaxs[np.arange(m), order[:, 0]]
    if dmaxs.shape[1] > 1:
        second = dmaxs[np.arange(m), order[:, 1]]
    else:
        second = np.full(m, np.inf)
    threshold = np.where(
        np.arange(dmaxs.shape[1])[None, :] == order[:, 0][:, None],
        second[:, None],
        best[:, None],
    )
    mask = dmins < threshold
    return [frozenset(np.nonzero(row)[0].tolist()) for row in mask]


def support_report(dmins: np.ndarray, dmaxs: np.ndarray) -> dict:
    """The shard-mergeable form of :func:`nonzero_from_matrices`.

    Returns per-row ``best`` / ``best_idx`` / ``second`` (the two
    smallest ``dmax`` entries, stable tie-break) plus the local
    membership CSR (``indptr`` / ``members`` / ``member_dmins``) under
    the *local* thresholds.  A supervisor holding one report per
    contiguous shard reconstructs the global Lemma 2.1 sets exactly:

    * the global two smallest ``dmax`` values are among the union of
      the shards' ``(best, second)`` pairs, and the stable argmin is
      the lowest global index attaining the global minimum — shard
      bests carry their indices and within a shard any ``second`` tied
      with ``best`` is attained at a *later* index, so shard bests
      alone decide the argmin;
    * each shard's local threshold is at least the global one, so local
      member sets are supersets of the shard's global contribution —
      filtering members by their ``dmin`` against the merged global
      threshold drops exactly the extras.
    """
    m, n = dmaxs.shape
    order = np.argsort(dmaxs, axis=1, kind="stable")
    best_idx = order[:, 0] if n else np.zeros(m, dtype=np.intp)
    best = dmaxs[np.arange(m), best_idx]
    if n > 1:
        second = dmaxs[np.arange(m), order[:, 1]]
    else:
        second = np.full(m, np.inf)
    threshold = np.where(
        np.arange(n)[None, :] == best_idx[:, None],
        second[:, None],
        best[:, None],
    )
    mask = dmins < threshold
    indptr = np.zeros(m + 1, dtype=np.intp)
    np.cumsum(mask.sum(axis=1), out=indptr[1:])
    rows, cols = np.nonzero(mask)
    return {
        "best": best,
        "best_idx": best_idx.astype(np.intp),
        "second": second,
        "indptr": indptr,
        "members": cols.astype(np.intp),
        "member_dmins": dmins[rows, cols],
    }


def brute_force_nonzero(points: Sequence[UncertainPoint], q) -> FrozenSet[int]:
    """Standalone O(n) oracle for ``NN!=0(q)`` (Lemma 2.1)."""
    return UncertainSet(points).nonzero_nn(q)
