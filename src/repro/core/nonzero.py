"""Nonzero nearest neighbors: definitions and the exact oracle.

Lemma 2.1: ``P_i`` belongs to ``NN!=0(q, P)`` iff
``delta_i(q) < Delta_j(q)`` for every ``j``, equivalently (Eq. (4))
``delta_i(q) < Delta(q)`` where ``Delta`` is the lower envelope of the
``Delta_j``.  The oracle here evaluates that predicate directly in O(n)
and serves as ground truth for every index and subdivision in the
library.
"""

from __future__ import annotations

import math
import random
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..uncertain.base import UncertainPoint


class UncertainSet:
    """A set ``P = {P_1, ..., P_n}`` of uncertain points.

    Thin container giving the core algorithms a uniform view: indexed
    access, vectorised ``delta``/``Delta`` evaluation, and the brute-force
    ``NN!=0`` oracle.
    """

    def __init__(self, points: Sequence[UncertainPoint]):
        self.points: List[UncertainPoint] = list(points)
        if not self.points:
            raise QueryError("UncertainSet requires at least one point")

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, i: int) -> UncertainPoint:
        return self.points[i]

    def __iter__(self):
        return iter(self.points)

    # -- envelope values ------------------------------------------------------
    def delta(self, i: int, q) -> float:
        """``delta_i(q)``, the minimum distance from ``q`` to ``P_i``."""
        return self.points[i].dmin(q)

    def big_delta(self, i: int, q) -> float:
        """``Delta_i(q)``, the maximum distance from ``q`` to ``P_i``."""
        return self.points[i].dmax(q)

    def envelope(self, q) -> Tuple[int, float]:
        """``(argmin, Delta(q))`` — the lower envelope of the ``Delta_i``.

        The projection of the graph of ``Delta`` is the additively
        weighted Voronoi diagram ``M`` of Section 2.1.
        """
        best_i, best = 0, math.inf
        for i, p in enumerate(self.points):
            v = p.dmax(q)
            if v < best:
                best_i, best = i, v
        return best_i, best

    def _envelope_two(self, q) -> Tuple[int, float, float]:
        """``(argmin, min, second-min)`` of the ``Delta_j(q)`` values.

        Lemma 2.1 quantifies over ``j != i``, so testing point ``i``
        needs ``min_{j != i} Delta_j``: the global minimum unless ``i``
        itself attains it, in which case the second minimum.
        """
        best_i, best, second = -1, math.inf, math.inf
        for i, p in enumerate(self.points):
            v = p.dmax(q)
            if v < best:
                best_i, second, best = i, best, v
            elif v < second:
                second = v
        return best_i, best, second

    # -- the oracle --------------------------------------------------------------
    def nonzero_nn(self, q) -> FrozenSet[int]:
        """``NN!=0(q, P)`` as a frozen set of indices (Lemma 2.1)."""
        arg, best, second = self._envelope_two(q)
        return frozenset(
            i
            for i, p in enumerate(self.points)
            if p.dmin(q) < (second if i == arg else best)
        )

    def is_nonzero_nn(self, i: int, q) -> bool:
        """True iff ``pi_i(q) > 0`` (membership form of Lemma 2.1)."""
        di = self.points[i].dmin(q)
        return all(
            di < p.dmax(q) for j, p in enumerate(self.points) if j != i
        )

    # -- misc helpers ---------------------------------------------------------------
    def bounding_box(self, margin: float = 0.0) -> Tuple[float, float, float, float]:
        """Bounding box of all supports, inflated by ``margin``."""
        boxes = [p.support_bbox() for p in self.points]
        return (
            min(b[0] for b in boxes) - margin,
            min(b[1] for b in boxes) - margin,
            max(b[2] for b in boxes) + margin,
            max(b[3] for b in boxes) + margin,
        )

    def instantiate(self, rng: random.Random) -> List[Tuple[float, float]]:
        """One random instantiation of every point (Section 4.2)."""
        return [p.sample(rng) for p in self.points]

    def all_discrete(self) -> bool:
        return all(p.is_discrete for p in self.points)

    def max_description_complexity(self) -> int:
        """``k``: the largest discrete support size (1 for continuous)."""
        return max(
            (len(p.locations) if p.is_discrete else 1) for p in self.points
        )


def brute_force_nonzero(points: Sequence[UncertainPoint], q) -> FrozenSet[int]:
    """Standalone O(n) oracle for ``NN!=0(q)`` (Lemma 2.1)."""
    return UncertainSet(points).nonzero_nn(q)
