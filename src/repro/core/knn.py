"""Probabilistic k-nearest-neighbor queries (Section 1.2 extensions).

The paper surveys kNN variants over uncertain data ([BSI08, CCCX09,
JCLY11]): with quantification-style semantics the natural quantity is

    ``pi_i^(k)(q) = Pr[P_i is among the k nearest neighbors of q]``,

which generalises ``pi_i = pi_i^(1)``.  For discrete distributions it is
exactly computable: conditioning on ``P_i = p_is`` at distance ``d``,
the other points are independent Bernoulli events "closer than ``d``"
with success probabilities ``G_{q,j}(d)``, so

    ``pi_i^(k)(q) = sum_s w_is * Pr[Binomial-mixture < k]``

evaluated by the standard Poisson-binomial dynamic program (O(n k) per
location, O(N n k) per query).  A Monte-Carlo estimator over full
instantiations covers continuous models.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence

import numpy as np

from ..config import SeedLike, default_rng
from ..errors import QueryError
from ..geometry import kernels
from .nonzero import UncertainSet


def knn_probabilities(points: Sequence, q, k: int) -> List[float]:
    """Exact ``pi_i^(k)(q)`` for all ``i`` (discrete distributions).

    ``k = 1`` coincides with the quantification probabilities of
    Eq. (2) away from distance ties.
    """
    uset = UncertainSet(points)
    n = len(points)
    if not 1 <= k <= n:
        raise QueryError(f"k must lie in [1, {n}]")
    if not uset.all_discrete():
        raise QueryError(
            "exact kNN probabilities require discrete distributions; "
            "use monte_carlo_knn for continuous models"
        )
    qx, qy = q[0], q[1]
    out: List[float] = []
    for i, p in enumerate(points):
        total = 0.0
        for (px, py), w in zip(p.locations, p.weights):
            d = math.hypot(px - qx, py - qy)
            probs = [
                points[j].distance_cdf(q, d) for j in range(n) if j != i
            ]
            total += w * _poisson_binomial_below(probs, k)
        out.append(min(1.0, total))
    return out


def _poisson_binomial_below(probs: Sequence[float], k: int) -> float:
    """``Pr[sum of independent Bernoulli(probs) <= k - 1]``.

    Standard DP over the success-count distribution, truncated at ``k``
    successes (everything at or above ``k`` is failure for our purpose).
    """
    # dp[c] = probability of exactly c successes so far (c < k).
    dp = [0.0] * k
    dp[0] = 1.0
    for p in probs:
        if p <= 0.0:
            continue
        if p >= 1.0:
            # A certain success shifts everything up.
            dp = [0.0] + dp[: k - 1]
            if not any(dp):
                return 0.0
            continue
        q0 = 1.0 - p
        new = [0.0] * k
        for c in range(k - 1, -1, -1):
            new[c] = dp[c] * q0 + (dp[c - 1] * p if c > 0 else 0.0)
        dp = new
    return sum(dp)


def monte_carlo_knn(
    points: Sequence,
    q,
    k: int,
    s: int = 2000,
    seed: int = 0,
) -> Dict[int, float]:
    """Monte-Carlo ``pi_i^(k)(q)`` estimates (any distribution models).

    Instantiates the whole set ``s`` times and counts how often each
    point lands among the ``k`` nearest instantiated locations — the
    Section 4.2 estimator generalised from rank 1 to rank k.
    """
    uset = UncertainSet(points)
    n = len(points)
    if not 1 <= k <= n:
        raise QueryError(f"k must lie in [1, {n}]")
    rng = random.Random(seed)
    counts = [0] * n
    qx, qy = q[0], q[1]
    for _ in range(s):
        sample = uset.instantiate(rng)
        dists = sorted(
            (math.hypot(x - qx, y - qy), i) for i, (x, y) in enumerate(sample)
        )
        for _, i in dists[:k]:
            counts[i] += 1
    return {i: c / s for i, c in enumerate(counts) if c > 0}


def monte_carlo_knn_many(
    points: Sequence,
    qs,
    k: int,
    s: int = 2000,
    rng: SeedLike = 0,
    samples=None,
    uset: UncertainSet = None,
) -> List[Dict[int, float]]:
    """Batched :func:`monte_carlo_knn` for an ``(m, 2)`` query matrix.

    Draws all ``s`` instantiations as one ``(s, n, 2)`` array through the
    models' ``sample_many`` and ranks each round against every query with
    a vectorized partial sort — one answer dict per query row.  ``rng``
    follows the :func:`repro.config.default_rng` convention (the batch
    stream differs from the scalar function's ``random.Random`` draws;
    estimates agree within the usual ``O(1/sqrt(s))`` noise).
    ``samples`` accepts a precomputed ``(s, n, 2)`` block (the
    :class:`repro.Engine` registry shares one block per ``(s, seed)``
    across this estimator and :class:`repro.MonteCarloPNN`) instead of
    redrawing; ``uset`` likewise adopts a shared container.
    """
    if uset is None:
        uset = UncertainSet(points)
    n = len(points)
    if not 1 <= k <= n:
        raise QueryError(f"k must lie in [1, {n}]")
    Q = kernels.as_query_array(qs)
    m = Q.shape[0]
    if samples is None:
        samples = uset.instantiate_many(default_rng(rng), s)
    elif samples.shape != (s, n, 2):
        raise QueryError(
            f"samples must have shape {(s, n, 2)}, got {samples.shape}"
        )
    counts = np.zeros((m, n), dtype=np.int64)
    rows = np.arange(m)[:, None]
    for j in range(s):
        d2 = kernels.pairwise_sq_distances(Q, samples[j])
        if k < n:
            top = np.argpartition(d2, k - 1, axis=1)[:, :k]
        else:
            top = np.broadcast_to(np.arange(n)[None, :], (m, n))
        counts[rows, top] += 1
    out: List[Dict[int, float]] = []
    for row in counts:
        nz = np.nonzero(row)[0]
        out.append({int(i): float(row[i]) / s for i in nz})
    return out


def expected_knn(points: Sequence, q, k: int) -> List[int]:
    """The expected-distance kNN ranking ([AESZ12] semantics): simply the
    ``k`` smallest expected distances — the paper's Section 1.2 notes
    this ranking is straightforward, unlike probability-based ranking."""
    uset = UncertainSet(points)
    if not 1 <= k <= len(points):
        raise QueryError(f"k must lie in [1, {len(points)}]")
    order = sorted(
        range(len(points)), key=lambda i: points[i].expected_distance(q)
    )
    return order[:k]


def expected_knn_many(points: Sequence, qs, k: int, planner=None) -> np.ndarray:
    """Batched :func:`expected_knn`: an ``(m, k)`` index matrix.

    One ``expected_distance_many`` call per point fills the full
    ``(m, n)`` expectation matrix, then a stable vectorized argsort
    reproduces the scalar tie-breaking (ascending index on equal
    expectations).  With a :class:`repro.QueryPlanner` over the same
    points, expectations are evaluated only on each query's survivors of
    the ``k``-th-envelope prune (identical ranking: pruned objects are
    strictly beyond the ``k``-th smallest expectation).
    """
    if planner is not None:
        return planner.expected_knn_many(qs, k)  # validates k itself
    uset = UncertainSet(points)
    if not 1 <= k <= len(points):
        raise QueryError(f"k must lie in [1, {len(points)}]")
    Q = kernels.as_query_array(qs)
    E = np.column_stack([p.expected_distance_many(Q) for p in uset])
    return np.argsort(E, axis=1, kind="stable")[:, :k]
