"""The curves ``gamma_i`` of Section 2.1 (disk uncertainty regions).

``gamma_i = { x : delta_i(x) = Delta(x) }`` is the boundary of the region
where ``P_i`` stops being a nonzero nearest neighbor.  Lemma 2.2: viewed
from the disk center ``c_i`` it is the lower envelope, in polar
coordinates, of the Apollonius branches ``gamma_ij``, has at most ``2n``
breakpoints, and is computable in ``O(n log n)`` time.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import GeometryError
from ..geometry.circle import Circle
from ..geometry.envelope import CircularEnvelope, circular_lower_envelope
from ..geometry.hyperbola import ApolloniusBranch, apollonius_branch_for_disks
from ..geometry.point import Point


def disks_of(points: Sequence) -> List[Circle]:
    """Extract the uncertainty disks from a sequence of uncertain points.

    Accepts objects exposing a ``disk`` attribute (``UniformDiskPoint``,
    ``TruncatedGaussianPoint``) or raw :class:`Circle` instances.
    """
    out: List[Circle] = []
    for p in points:
        if isinstance(p, Circle):
            out.append(p)
        elif hasattr(p, "disk"):
            out.append(p.disk)
        else:
            raise GeometryError(
                f"{type(p).__name__} has no disk uncertainty region; "
                "the gamma-curve machinery requires disk supports"
            )
    return out


class GammaCurve:
    """``gamma_i`` for one disk against the rest of the family."""

    def __init__(self, disks: Sequence[Circle], i: int, n_samples: Optional[int] = None):
        self.disks = list(disks)
        self.i = i
        self.center = self.disks[i].center
        branches: List[ApolloniusBranch] = []
        owners: List[int] = []
        for j, dj in enumerate(self.disks):
            if j == self.i:
                continue
            br = apollonius_branch_for_disks(
                self.center,
                self.disks[i].radius,
                dj.center,
                dj.radius,
                payload=j,
            )
            if br is not None:
                branches.append(br)
                owners.append(j)
        self.branches = branches
        self.owners = owners
        self.envelope: CircularEnvelope = circular_lower_envelope(
            branches, n_samples=n_samples
        )

    # -- combinatorics ------------------------------------------------------
    def breakpoints(self) -> List[float]:
        """Directions of the breakpoints of ``gamma_i`` (Lemma 2.2)."""
        return self.envelope.breakpoints()

    def num_breakpoints(self) -> int:
        return len(self.breakpoints())

    def piece_owners(self) -> List[int]:
        """Disk index ``j`` owning each finite envelope piece."""
        return [self.owners[p.index] for p in self.envelope.finite_pieces()]

    # -- geometry -------------------------------------------------------------
    def radius(self, theta: float) -> float:
        """Distance from ``c_i`` to ``gamma_i`` in direction ``theta``."""
        return self.envelope.value(theta)

    def point_at(self, theta: float) -> Optional[Point]:
        rho = self.radius(theta)
        if not math.isfinite(rho):
            return None
        return Point(
            self.center.x + rho * math.cos(theta),
            self.center.y + rho * math.sin(theta),
        )

    def residual(self, p) -> float:
        """``delta_i(p) - Delta(p)``; zero on the curve."""
        di = self.disks[self.i].min_distance(p)
        big = min(d.max_distance(p) for d in self.disks)
        return di - big

    def sample_polyline(
        self,
        clip_radius: float,
        points_per_piece: int = 48,
    ) -> List[List[Tuple[float, float]]]:
        """Polyline chains approximating ``gamma_i``.

        Pieces are sampled in angle; samples farther than ``clip_radius``
        from ``c_i`` are dropped (the curve escapes to infinity near the
        support boundaries of its branches), splitting chains as needed.
        """
        chains: List[List[Tuple[float, float]]] = []
        for piece in self.envelope.finite_pieces():
            chain: List[Tuple[float, float]] = []
            m = max(points_per_piece, int(points_per_piece * piece.width))
            for t in range(m + 1):
                theta = piece.lo + piece.width * t / m
                rho = self.envelope.curves[piece.index].radius(theta)
                if not math.isfinite(rho) or rho > clip_radius:
                    if len(chain) >= 2:
                        chains.append(chain)
                    chain = []
                    continue
                chain.append(
                    (
                        self.center.x + rho * math.cos(theta),
                        self.center.y + rho * math.sin(theta),
                    )
                )
            if len(chain) >= 2:
                chains.append(chain)
        return chains


def gamma_curves(points: Sequence, n_samples: Optional[int] = None) -> List[GammaCurve]:
    """All curves ``gamma_1..gamma_n`` for a family of disk-backed points."""
    disks = disks_of(points)
    return [GammaCurve(disks, i, n_samples=n_samples) for i in range(len(disks))]
