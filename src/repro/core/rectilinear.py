"""``NN!=0`` queries under the Linf and L1 metrics.

Remark (ii) after Theorem 3.1: "If we use L1 or Linf metric ... then an
NN!=0(q) query can be answered in O(log^2 n + t) time using O(n log^2 n)
space: the first stage remains the same and the second stage reduces to
reporting a set of axis-aligned squares that intersect a query
axis-aligned square."

The implementation follows that plan literally with square (rectangle)
uncertainty regions: stage 1 minimises the Chebyshev max-distance by
R-tree best-first search, stage 2 is a rectangle/rectangle intersection
report (the query Linf ball *is* an axis-aligned square).  L1 reduces
to Linf by the 45-degree isometry ``(x, y) -> (x + y, x - y)``, under
which L1 diamonds become squares.
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Sequence, Tuple

from ..errors import QueryError
from ..geometry.metrics import (
    diamond_to_rect,
    rect_max_chebyshev,
    rect_min_chebyshev,
    rotate_to_chebyshev,
)
from ..index.rtree import RTree

Rect = Tuple[float, float, float, float]


def chebyshev_nonzero_nn(rects: Sequence[Rect], q) -> FrozenSet[int]:
    """Brute-force Linf ``NN!=0`` oracle over rectangle regions.

    Lemma 2.1 is metric-agnostic: ``i`` is a member iff its minimum
    Chebyshev distance beats every other region's maximum (``j != i``).
    """
    if not rects:
        raise QueryError("empty rectangle family")
    maxs = [rect_max_chebyshev(q, r) for r in rects]
    arg = min(range(len(rects)), key=lambda i: maxs[i])
    best = maxs[arg]
    second = min(
        (maxs[j] for j in range(len(rects)) if j != arg), default=math.inf
    )
    out = set()
    for i, r in enumerate(rects):
        bound = second if i == arg else best
        if rect_min_chebyshev(q, r) < bound:
            out.add(i)
    return frozenset(out)


class ChebyshevNonzeroIndex:
    """Two-stage Linf ``NN!=0`` index over rectangle uncertainty regions."""

    def __init__(self, rects: Sequence[Rect]):
        self.rects: List[Rect] = [tuple(map(float, r)) for r in rects]
        self._rtree = RTree(self.rects)

    def envelope(self, q) -> float:
        """Stage 1: ``Delta_inf(q) = min_i`` max Chebyshev distance.

        ``rect_min_chebyshev`` is a valid best-first lower bound for the
        R-tree because every region inside a node's bbox has max-distance
        at least the bbox's min-distance.
        """
        _, val = self._rtree.best_first_min(
            q, lambda i: rect_max_chebyshev(q, self.rects[i])
        )
        return val

    def query(self, q) -> FrozenSet[int]:
        delta = self.envelope(q)
        # Stage 2: regions intersecting the open Linf ball = the open
        # axis-aligned square of half-side delta around q.
        window = (q[0] - delta, q[1] - delta, q[0] + delta, q[1] + delta)
        candidates = self._rtree.query_rect(window)
        members = {
            i
            for i in candidates
            if rect_min_chebyshev(q, self.rects[i]) < delta
        }
        # Lemma 2.1's j != i tie (the envelope owner with all-equidistant
        # support), cf. repro.core.nonzero_index._with_tie_fallback.
        arg, _ = self._rtree.best_first_min(
            q, lambda i: rect_max_chebyshev(q, self.rects[i])
        )
        if arg not in members:
            _, second = self._rtree.best_first_min(
                q,
                lambda i: math.inf
                if i == arg
                else rect_max_chebyshev(q, self.rects[i]),
            )
            if rect_min_chebyshev(q, self.rects[arg]) < second:
                members.add(arg)
        return frozenset(members)


class ManhattanNonzeroIndex:
    """L1 ``NN!=0`` index over diamond uncertainty regions.

    Each uncertain point is a diamond ``{x : d_1(x, center) <= radius}``;
    the 45-degree isometry turns the problem into the Chebyshev one.
    """

    def __init__(self, diamonds: Sequence[Tuple[Tuple[float, float], float]]):
        if not diamonds:
            raise QueryError("empty diamond family")
        self.diamonds = [(tuple(map(float, c)), float(r)) for c, r in diamonds]
        self._inner = ChebyshevNonzeroIndex(
            [diamond_to_rect(c, r) for c, r in self.diamonds]
        )

    def query(self, q) -> FrozenSet[int]:
        return self._inner.query(rotate_to_chebyshev(q))

    def envelope(self, q) -> float:
        """``min_i`` max L1 distance from ``q`` to a diamond."""
        return self._inner.envelope(rotate_to_chebyshev(q))


def manhattan_nonzero_nn(
    diamonds: Sequence[Tuple[Tuple[float, float], float]], q
) -> FrozenSet[int]:
    """Brute-force L1 oracle over diamond regions (via the isometry)."""
    rects = [diamond_to_rect(c, r) for c, r in diamonds]
    return chebyshev_nonzero_nn(rects, rotate_to_chebyshev(q))
