"""The nonzero Voronoi diagram ``V!=0(P)`` for disk uncertainty regions.

Corollary 2.4: ``V!=0(P)`` is the planar subdivision ``A(Gamma)`` induced
by the curves ``gamma_1..gamma_n``.  This module materialises that
subdivision: the curves are computed exactly (polar envelopes of
Apollonius branches, Lemma 2.2), sampled into dense polylines, overlaid
with the planar engine, and every face is labelled with its exact set
``P_phi = NN!=0`` by evaluating the Lemma 2.1 oracle at a representative
interior point.  Labels are therefore exact; only the geometry of the
cell *boundaries* is approximated, with precision set by
``points_per_piece``.

For combinatorial complexity experiments use
:mod:`repro.core.census`, which counts the diagram's vertices exactly
from witness-disk tangencies instead of polylines.
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..geometry.dcel import PlanarSubdivision
from ..geometry.planarize import box_border_segments, planarize
from ..geometry.pointlocation import LabelledSubdivision
from .gamma import GammaCurve, disks_of, gamma_curves
from .nonzero import UncertainSet


class NonzeroVoronoiDiagram:
    """Explicit, queryable ``V!=0(P)`` for disk-backed uncertain points.

    Parameters
    ----------
    points:
        Uncertain points with disk supports.
    bbox:
        Working domain; defaults to the support bounding box inflated by
        ``margin_factor`` of its diagonal.  Queries outside the box fall
        back to the exact O(n) oracle.
    points_per_piece:
        Polyline sampling density per envelope piece.
    """

    def __init__(
        self,
        points: Sequence,
        bbox: Optional[Tuple[float, float, float, float]] = None,
        margin_factor: float = 0.5,
        points_per_piece: int = 48,
        n_samples: Optional[int] = None,
    ):
        self.uset = UncertainSet(points)
        self.disks = disks_of(points)
        if bbox is None:
            raw = self.uset.bounding_box()
            diag = math.hypot(raw[2] - raw[0], raw[3] - raw[1]) or 1.0
            m = margin_factor * diag
            bbox = (raw[0] - m, raw[1] - m, raw[2] + m, raw[3] + m)
        self.bbox = bbox
        self.curves: List[GammaCurve] = gamma_curves(points, n_samples=n_samples)

        segments = box_border_segments(*bbox)
        corners = [
            (bbox[0], bbox[1]),
            (bbox[2], bbox[1]),
            (bbox[2], bbox[3]),
            (bbox[0], bbox[3]),
        ]
        for curve in self.curves:
            clip_radius = max(
                math.hypot(c[0] - curve.center.x, c[1] - curve.center.y)
                for c in corners
            ) * 1.5
            for chain in curve.sample_polyline(clip_radius, points_per_piece):
                clipped = _clip_chain(chain, bbox)
                for sub in clipped:
                    segments.extend(zip(sub, sub[1:]))
        vertices, edges = planarize(segments)
        self.subdivision = PlanarSubdivision(vertices, edges)
        self.labels: List[Optional[FrozenSet[int]]] = self.subdivision.label_cycles(
            lambda x, y: self.uset.nonzero_nn((x, y))
        )
        self._located = LabelledSubdivision(
            self.subdivision, self.labels, outside_label=None
        )

    # -- queries -------------------------------------------------------------
    def query(self, q) -> FrozenSet[int]:
        """``NN!=0(q)`` via point location (O(log) inside the domain)."""
        label = self._located.query(q[0], q[1])
        if label is None:
            return self.uset.nonzero_nn(q)
        return label

    def query_exact(self, q) -> FrozenSet[int]:
        """The O(n) oracle (Lemma 2.1), bypassing the subdivision."""
        return self.uset.nonzero_nn(q)

    # -- statistics -----------------------------------------------------------
    def num_distinct_labels(self) -> int:
        return len(
            {label for label in self.labels if label is not None}
        )

    def complexity(self) -> dict:
        """Combinatorial size of the materialised subdivision.

        Polyline sampling inflates vertex/edge counts; use
        :func:`repro.core.census.nonzero_voronoi_census` for the exact
        vertex census of the underlying curve arrangement.
        """
        sub = self.subdivision
        return {
            "vertices": sub.num_vertices(),
            "edges": sub.num_edges(),
            "faces": sub.num_faces(),
            "distinct_labels": self.num_distinct_labels(),
        }


def _clip_chain(
    chain: Sequence[Tuple[float, float]],
    bbox: Tuple[float, float, float, float],
) -> List[List[Tuple[float, float]]]:
    """Clip a polyline chain to a box, splitting where it exits."""
    from ..geometry.segment import Segment, clip_segment_to_box

    xmin, ymin, xmax, ymax = bbox
    out: List[List[Tuple[float, float]]] = []
    current: List[Tuple[float, float]] = []
    for a, b in zip(chain, chain[1:]):
        seg = clip_segment_to_box(Segment(a, b), xmin, ymin, xmax, ymax)
        if seg is None:
            if len(current) >= 2:
                out.append(current)
            current = []
            continue
        pa = (seg.a.x, seg.a.y)
        pb = (seg.b.x, seg.b.y)
        if not current:
            current = [pa, pb]
        elif current[-1] == pa:
            current.append(pb)
        else:
            if len(current) >= 2:
                out.append(current)
            current = [pa, pb]
    if len(current) >= 2:
        out.append(current)
    return out
