"""Baselines from the literature the paper compares against.

[CKP04] ("Querying imprecise data in moving object environments")
answers nonzero-NN queries with an R-tree branch-and-prune: traverse the
tree while maintaining the smallest max-distance seen so far, prune
subtrees whose min-distance exceeds it, and keep every object whose
min-distance beats the final threshold.  The paper's Section 1.2 notes
these methods carry no nontrivial worst-case guarantee; the benchmarks
measure how the guarantee-free traversal compares with the two-stage
plan of Section 3.
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Sequence

from ..index.rtree import RTree, rect_maxdist, rect_mindist
from .nonzero import UncertainSet


class BranchAndPruneIndex:
    """[CKP04]-style single-pass branch-and-prune over an R-tree."""

    def __init__(self, points: Sequence):
        self.uset = UncertainSet(points)
        self._rtree = RTree([p.support_bbox() for p in points])
        self.last_visited_nodes = 0  # instrumentation for benchmarks

    def query(self, q) -> FrozenSet[int]:
        """``NN!=0(q)`` via min/max-distance pruning.

        First pass establishes ``threshold = min_i Delta_i(q)`` using
        bbox max-distance bounds refined at the leaves; second pass
        collects objects with ``delta_i(q) < threshold``, pruning by
        bbox min-distance.
        """
        self.last_visited_nodes = 0
        threshold = self._min_maxdist(q)
        out: List[int] = []
        stack = [self._rtree.root]
        while stack:
            node = stack.pop()
            self.last_visited_nodes += 1
            if rect_mindist(q, node.bbox) >= threshold:
                continue
            if node.entries is not None:
                for i in node.entries:
                    if rect_mindist(q, self._rtree.rects[i]) >= threshold:
                        continue
                    if self.uset.delta(i, q) < threshold:
                        out.append(i)
            else:
                stack.extend(node.children)
        from .nonzero_index import _with_tie_fallback

        return _with_tie_fallback(self.uset, self._rtree, q, set(out))

    def _min_maxdist(self, q) -> float:
        best = math.inf
        stack = [self._rtree.root]
        while stack:
            node = stack.pop()
            self.last_visited_nodes += 1
            if rect_mindist(q, node.bbox) >= best:
                continue
            if node.entries is not None:
                for i in node.entries:
                    # Cheap bbox upper bound first, exact refinement second.
                    ub = rect_maxdist(q, self._rtree.rects[i])
                    if ub < best:
                        best = ub
                    if rect_mindist(q, self._rtree.rects[i]) < best:
                        exact = self.uset.big_delta(i, q)
                        if exact < best:
                            best = exact
            else:
                # Visit children nearest-first for tighter early bounds.
                children = sorted(
                    node.children, key=lambda c: rect_mindist(q, c.bbox)
                )
                stack.extend(reversed(children))
        return best


class LinearScanIndex:
    """The trivial O(n)-per-query baseline (exactly Lemma 2.1)."""

    def __init__(self, points: Sequence):
        self.uset = UncertainSet(points)

    def query(self, q) -> FrozenSet[int]:
        return self.uset.nonzero_nn(q)
