"""Sublinear ε-approximate answering: the quantized-envelope tier.

The paper's headline structures do not evaluate every distance function
per query — they ε-quantize the distance functions, take the lower
envelope of the quantized family, and preprocess the induced planar
subdivision for point location.  :class:`QuantizedEnvelopeIndex` is the
production form of that idea over the :class:`repro.ModelColumns` SoA
store:

* Every object contributes a *bracket* ``lb_i <= f_i <= ub_i`` of its
  criterion function (``f_i = E[d(q, P_i)]`` for ``criterion="expected"``,
  the ``dmin_i``/``dmax_i`` support pair for ``criterion="support"``),
  evaluated vectorized from the SoA columns.  All these functions are
  1-Lipschitz in ``q``, which is what makes quantization certifiable.
* The plane is compressed into an adaptive quadtree whose cells play the
  role of the ε-quantized lower-envelope subdivision: a cell is **settled**
  as soon as one object's bracket dominates every other bracket over the
  whole cell — or, for the expected criterion, as soon as some object is
  provably within the cell's certification budget of optimal everywhere
  in the cell — and is otherwise refined until its half-diagonal fits
  the budget (the envelope's ε-boundary strips).  Finished ε-cells are
  labelled with **exact** evaluations at the cell center; the Lipschitz
  property turns those labels into certified answers for every query in
  the cell.
* The budget is ``max(ε, rel * dist)``: pure additive quantization with
  ``rel = 0``, and the paper's multiplicative ``(1 + ε)``-style regime
  with ``rel > 0``, which keeps far-field cells coarse (cell size grows
  linearly with the distance to the envelope) so the structure stays
  near-linear even when near-ties stretch across the whole domain.
* Queries run **batched point location**: a vectorized quadtree descent
  (O(log(diameter / ε)) arithmetic per query, no Python-object work),
  then array gathers of the precomputed labels.  Answers carry the
  certified ε bound and an **exact-fallback mask** marking the rows the
  certificate could not settle (queries outside the quantized domain or
  in cells that hit the refinement guards); callers route exactly those
  rows to an exact tier.

Certificates (``hd`` = cell half-diagonal ``<= ε/2``, ``c`` = center)
--------------------------------------------------------------------
Write ``δ(q) = max(ε, rel * min_i E_i(q))`` for the query's certification
budget (``δ = ε`` exactly when ``rel = 0``).

``expected``: an ε-cell's label stores ``w = argmin_i E_i(c)`` and
``v = min_i E_i(c)``; for any ``q`` in the cell 1-Lipschitzness gives
``|v - min_i E_i(q)| <= hd <= δ(q)/2`` and
``E_w(q) <= v + hd <= min_i E_i(q) + 2 hd <= min_i E_i(q) + δ(q)``.
On settled cells the winner's expectation is evaluated exactly at query
time: single-candidate cells are exact (error 0), budget-settled cells
return a value within ``δ(q)`` of the optimum by construction.

``support``: the label stores the Lemma 2.1 set at the center.  Writing
``t_i(q) = min_{j != i} dmax_j(q)`` and ``δ(q) = max(ε, rel * min_j
dmax_j(q))``, the returned set ``S`` satisfies
``{i : dmin_i(q) < t_i(q) - δ(q)} ⊆ S ⊆ {i : dmin_i(q) <= t_i(q) + δ(q)}``
— an ε-relaxation of ``NN!=0(q)``; on settled cells ``S = NN!=0(q)``
exactly.  Threshold answers are emitted only where they are exact
(settled singleton cells have ``pi_w = 1``); everything else lands in
the fallback mask (or, with ``certified_only=False``, receives the
center's quantification sweep as an *uncertified* estimate).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError
from ..geometry import kernels
from ..uncertain.columns import ModelColumns
from .continuous_quant import continuous_quantification_many
from .quantification import quantification_probabilities

__all__ = [
    "ApproxNN",
    "ApproxSets",
    "ApproxThreshold",
    "QuantizedEnvelopeIndex",
]

#: Leaf kinds.
_SETTLED = 0
_QUANT = 1
_FALLBACK = 2

#: Relative slack on the candidate cutoff (mirrors the planner's guard
#: against bounds computed a few ulps high).
_SLACK = 1.0 + 1e-12

_SQRT2 = math.sqrt(2.0)


@dataclasses.dataclass
class ApproxNN:
    """ε-certified expected-NN answers for a query batch.

    ``winners[r]`` / ``values[r]`` are valid wherever ``fallback[r]`` is
    False, and then satisfy ``E_winner(q_r) <= min_i E_i(q_r) + d`` and
    ``|values[r] - min_i E_i(q_r)| <= d`` for the certified budget
    ``d = max(eps, rel * min_i E_i(q_r))`` (``d = eps`` when
    ``rel = 0``).  Fallback rows hold ``-1`` / ``nan`` and must be
    answered by an exact tier.
    """

    winners: np.ndarray
    values: np.ndarray
    fallback: np.ndarray
    eps: float
    rel: float = 0.0


@dataclasses.dataclass
class ApproxSets:
    """ε-relaxed ``NN!=0`` sets (exact on settled cells) + fallback mask."""

    sets: List[FrozenSet[int]]
    fallback: np.ndarray
    eps: float
    rel: float = 0.0


@dataclasses.dataclass
class ApproxThreshold:
    """Certified-exact threshold answers + fallback mask.

    Rows not in ``fallback`` are exactly the [DYM+05] answer.  With
    ``certified_only=False`` the fallback rows that hit a labelled cell
    receive the cell center's sweep as an uncertified estimate instead
    (and stay flagged in ``fallback``).
    """

    answers: List[Dict[int, float]]
    fallback: np.ndarray
    eps: float
    rel: float = 0.0


class QuantizedEnvelopeIndex:
    """Point location in the ε-quantized lower envelope of a model set.

    Parameters
    ----------
    points:
        The uncertain points (any mix of models).
    eps:
        The additive certification radius, in distance units of the
        data.  Tree size grows like ``O(ambiguous-area / eps^2)``.
    rel:
        Optional relative certification factor: the per-cell budget
        becomes ``max(eps, rel * dist-to-envelope)``, so far-field cells
        stay coarse (the multiplicative quantization regime).  ``0``
        (default) keeps the pure additive ε contract.
    criterion:
        ``"expected"`` — quantize the expected-distance envelope (serves
        :meth:`expected_nn_many`); ``"support"`` — quantize the
        ``dmin``/``dmax`` envelope (serves :meth:`nonzero_nn_many` and
        :meth:`threshold_nn_many`).
    columns:
        Optional precomputed :class:`ModelColumns` over ``points``.
    margin:
        Fractional padding of the quantized domain around the data
        bounding box; queries outside the domain fall back.
    max_nodes / max_depth:
        Refinement guards.  Cells still unresolved when a guard trips
        become fallback leaves (reported by :meth:`stats`), never wrong
        answers.
    """

    def __init__(
        self,
        points: Sequence,
        eps: float,
        criterion: str = "expected",
        rel: float = 0.0,
        columns: Optional[ModelColumns] = None,
        margin: float = 0.5,
        max_nodes: int = 2_000_000,
        max_depth: int = 40,
    ):
        if not (eps > 0.0):
            raise QueryError("eps must be positive")
        if rel < 0.0:
            raise QueryError("rel must be non-negative")
        if criterion not in ("expected", "support"):
            raise QueryError(f"unknown quantization criterion {criterion!r}")
        self.points = list(points)
        if not self.points:
            raise QueryError("QuantizedEnvelopeIndex requires at least one point")
        self.columns = columns if columns is not None else ModelColumns(self.points)
        if self.columns.n != len(self.points):
            raise QueryError("columns were built over a different point set")
        self.eps = float(eps)
        self.rel = float(rel)
        self.criterion = criterion
        self.max_nodes = int(max_nodes)
        self.max_depth = int(max_depth)
        self._build_root(float(margin))
        self._build_tree()
        self._label_leaves()
        self._pi_cache: Dict[int, Dict[int, float]] = {}

    # -- construction --------------------------------------------------------
    def _build_root(self, margin: float) -> None:
        bb = self.columns.bboxes
        xmin = float(np.min(bb[:, 0]))
        ymin = float(np.min(bb[:, 1]))
        xmax = float(np.max(bb[:, 2]))
        ymax = float(np.max(bb[:, 3]))
        extent = max(xmax - xmin, ymax - ymin)
        pad = margin * extent + self.eps
        side = extent + 2.0 * pad
        self._root_cx = 0.5 * (xmin + xmax)
        self._root_cy = 0.5 * (ymin + ymax)
        self._root_half = 0.5 * side

    def _pair_bounds(
        self, qx: np.ndarray, qy: np.ndarray, cols: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Criterion brackets for flat (cell, object) pair arrays —
        :meth:`repro.ModelColumns.pair_bounds`, which keeps this math
        next to the matrix-form bracket methods."""
        return self.columns.pair_bounds(qx, qy, cols, self.criterion)

    @staticmethod
    def _gather_segments(
        values: np.ndarray, indptr: np.ndarray, cells: np.ndarray, copies: int = 1
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenate CSR segments of ``cells`` (each repeated ``copies``
        times consecutively).  Returns the gathered values and the
        per-run segment lengths."""
        gather, lens = kernels.csr_segment_gather(indptr, cells, copies)
        return values[gather], lens

    def _build_tree(self) -> None:
        n = self.columns.n
        node_cx: List[np.ndarray] = []
        node_cy: List[np.ndarray] = []
        node_child: List[np.ndarray] = []
        node_leaf: List[np.ndarray] = []
        leaf_kind: List[np.ndarray] = []
        leaf_winner: List[np.ndarray] = []
        leaf_cx: List[np.ndarray] = []
        leaf_cy: List[np.ndarray] = []
        leaf_hd: List[np.ndarray] = []
        quant_ids: List[np.ndarray] = []
        quant_chunks: List[np.ndarray] = []
        quant_counts: List[np.ndarray] = []

        level_cx = np.array([self._root_cx])
        level_cy = np.array([self._root_cy])
        indptr = np.array([0, n], dtype=np.intp)
        cand = np.arange(n, dtype=np.intp)
        h = self._root_half
        depth = 0
        node_count = 0
        leaf_count = 0
        while level_cx.size:
            hd = h * _SQRT2
            k = level_cx.size
            counts = np.diff(indptr)
            rows = np.repeat(np.arange(k, dtype=np.intp), counts)
            lb, ub = self._pair_bounds(level_cx[rows], level_cy[rows], cand)
            minub = np.minimum.reduceat(ub, indptr[:-1])
            minlb = np.minimum.reduceat(lb, indptr[:-1])
            # The per-cell certification budget: absolute eps, widened to
            # rel * (a lower bound on the envelope value over the cell)
            # when the relative regime is enabled — the multiplicative
            # quantization that keeps far-field cells coarse.
            budget = np.maximum(self.eps, self.rel * (minlb - hd))
            keep = lb <= ((minub + 2.0 * hd) * _SLACK)[rows]
            new_counts = np.add.reduceat(keep.astype(np.intp), indptr[:-1])
            new_idx = cand[keep]
            new_indptr = np.concatenate(
                ([0], np.cumsum(new_counts))
            ).astype(np.intp)
            # The argmin-ub pair always survives the keep filter, so it
            # is the winner both of single-candidate cells and of cells
            # finished by the eps-settled test below.
            npairs = cand.shape[0]
            pair_pos = np.arange(npairs, dtype=np.intp)
            pos = np.where(ub == minub[rows], pair_pos, npairs)
            winner_ub = cand[np.minimum.reduceat(pos, indptr[:-1])]
            settled = new_counts == 1
            if self.criterion == "expected":
                # eps-settled: the argmin-ub object is budget-optimal
                # everywhere in the cell even if others survive.
                settled |= (minub + 2.0 * hd) <= (minlb + budget)
            resolved = (2.0 * hd <= budget) & ~settled
            guard = (
                depth >= self.max_depth
                or node_count + 1 + 4 * int((~settled).sum()) > self.max_nodes
            )
            if guard:
                resolved = ~settled
            open_mask = ~settled & ~resolved
            # -- emit this level's leaves (settled + resolved), in cell
            # order, with vectorized bookkeeping.
            emit = settled | resolved
            emit_cells = np.flatnonzero(emit)
            n_emit = emit_cells.size
            cur_leaf = np.full(k, -1, dtype=np.intp)
            cur_child = np.full(k, -1, dtype=np.intp)
            if n_emit:
                cur_leaf[emit_cells] = leaf_count + np.arange(
                    n_emit, dtype=np.intp
                )
                kinds = np.where(
                    settled[emit_cells],
                    _SETTLED,
                    np.where(
                        (2.0 * hd <= budget)[emit_cells], _QUANT, _FALLBACK
                    ),
                ).astype(np.int8)
                winners = np.where(
                    settled[emit_cells], winner_ub[emit_cells], -1
                ).astype(np.intp)
                leaf_kind.append(kinds)
                leaf_winner.append(winners)
                leaf_cx.append(level_cx[emit_cells])
                leaf_cy.append(level_cy[emit_cells])
                leaf_hd.append(np.full(n_emit, hd))
                q_local = np.flatnonzero(kinds == _QUANT)
                if q_local.size:
                    q_cells = emit_cells[q_local]
                    quant_ids.append(cur_leaf[q_cells])
                    seg_vals, seg_lens = self._gather_segments(
                        new_idx, new_indptr, q_cells
                    )
                    quant_chunks.append(seg_vals)
                    quant_counts.append(seg_lens)
                leaf_count += n_emit
            # -- split the remaining cells into 4 children (quadrant
            # order must match the descent rule (qx > cx) + 2*(qy > cy)).
            open_cells = np.flatnonzero(open_mask)
            n_split = open_cells.size
            child_base = node_count + k
            if n_split:
                cur_child[open_cells] = child_base + 4 * np.arange(
                    n_split, dtype=np.intp
                )
            node_cx.append(level_cx)
            node_cy.append(level_cy)
            node_child.append(cur_child)
            node_leaf.append(cur_leaf)
            node_count += k
            if not n_split:
                break
            h2 = 0.5 * h
            ccx = np.repeat(level_cx[open_cells], 4) + np.tile(
                [-h2, h2, -h2, h2], n_split
            )
            ccy = np.repeat(level_cy[open_cells], 4) + np.tile(
                [-h2, -h2, h2, h2], n_split
            )
            cand, child_counts = self._gather_segments(
                new_idx, new_indptr, open_cells, copies=4
            )
            indptr = np.concatenate(
                ([0], np.cumsum(child_counts))
            ).astype(np.intp)
            level_cx = ccx
            level_cy = ccy
            h = h2
            depth += 1

        self._node_cx = np.concatenate(node_cx)
        self._node_cy = np.concatenate(node_cy)
        self._node_child = np.concatenate(node_child)
        self._node_leaf = np.concatenate(node_leaf)
        self._leaf_kind = (
            np.concatenate(leaf_kind)
            if leaf_kind
            else np.zeros(0, dtype=np.int8)
        )
        self._leaf_winner = (
            np.concatenate(leaf_winner)
            if leaf_winner
            else np.zeros(0, dtype=np.intp)
        )
        self._leaf_cx = np.concatenate(leaf_cx) if leaf_cx else np.zeros(0)
        self._leaf_cy = np.concatenate(leaf_cy) if leaf_cy else np.zeros(0)
        self._leaf_hd = np.concatenate(leaf_hd) if leaf_hd else np.zeros(0)
        self._leaf_value = np.full(self._leaf_kind.shape[0], np.nan)
        self._leaf_set: List[Optional[FrozenSet[int]]] = [
            None
        ] * self._leaf_kind.shape[0]
        self._quant_leaf_ids = (
            np.concatenate(quant_ids)
            if quant_ids
            else np.zeros(0, dtype=np.intp)
        )
        self._quant_indptr = np.concatenate(
            (
                [0],
                np.cumsum(
                    np.concatenate(quant_counts)
                    if quant_counts
                    else np.zeros(0, dtype=np.intp)
                ),
            )
        ).astype(np.intp)
        self._quant_idx = (
            np.concatenate(quant_chunks).astype(np.intp)
            if quant_chunks
            else np.zeros(0, dtype=np.intp)
        )
        self._depth = depth

    def _per_object_eval(
        self, evaluate, pair_rows: np.ndarray, pair_cols: np.ndarray, C: np.ndarray
    ) -> np.ndarray:
        """``evaluate(point_i, centers)`` gathered over CSR pairs, one
        vectorized call per distinct object."""
        vals = np.empty(pair_cols.shape[0])
        order = np.argsort(pair_cols, kind="stable")
        sorted_cols = pair_cols[order]
        starts = np.searchsorted(
            sorted_cols, np.arange(self.columns.n), side="left"
        )
        ends = np.searchsorted(
            sorted_cols, np.arange(self.columns.n), side="right"
        )
        for i in range(self.columns.n):
            sel = order[starts[i]:ends[i]]
            if sel.size:
                vals[sel] = evaluate(self.points[i], C[pair_rows[sel]])
        return vals

    def _label_leaves(self) -> None:
        """Allocate the lazy label store.  ε-cell labels (exact center
        evaluations) are computed on first touch by
        :meth:`_ensure_quant_labels` — queries pay only for the cells
        they actually land in; :meth:`prelabel` forces all of them."""
        self._leaf_labelled = np.zeros(self._leaf_kind.shape[0], dtype=bool)

    def prelabel(self) -> None:
        """Eagerly compute every ε-cell label (full preprocessing)."""
        self._ensure_quant_labels(self._quant_leaf_ids)

    def _ensure_quant_labels(self, lids: np.ndarray) -> None:
        """Label the (unique, QUANT-kind) leaf ids that are still
        unlabelled: one grouped exact evaluation per distinct object."""
        need = lids[~self._leaf_labelled[lids]]
        if need.size == 0:
            return
        ordinals = np.searchsorted(self._quant_leaf_ids, need)
        cols, lens = self._gather_segments(
            self._quant_idx, self._quant_indptr, ordinals
        )
        indptr = np.concatenate(([0], np.cumsum(lens))).astype(np.intp)
        C = np.column_stack((self._leaf_cx[need], self._leaf_cy[need]))
        L = need.size
        pr = np.repeat(np.arange(L, dtype=np.intp), lens)
        npairs = cols.shape[0]
        pair_pos = np.arange(npairs, dtype=np.intp)
        if self.criterion == "expected":
            vals = self._per_object_eval(
                lambda p, Qs: p.expected_distance_many(Qs), pr, cols, C
            )
            minv = np.minimum.reduceat(vals, indptr[:-1])
            pos = np.where(vals == minv[pr], pair_pos, npairs)
            first = np.minimum.reduceat(pos, indptr[:-1])
            self._leaf_value[need] = minv
            self._leaf_winner[need] = cols[first]
        else:
            dmins = self._per_object_eval(
                lambda p, Qs: p.dmin_many(Qs), pr, cols, C
            )
            dmaxs = self._per_object_eval(
                lambda p, Qs: p.dmax_many(Qs), pr, cols, C
            )
            best = np.minimum.reduceat(dmaxs, indptr[:-1])
            pos = np.where(dmaxs == best[pr], pair_pos, npairs)
            argpos = np.minimum.reduceat(pos, indptr[:-1])
            masked = dmaxs.copy()
            masked[argpos] = np.inf
            second = np.minimum.reduceat(masked, indptr[:-1])
            # Lemma 2.1 at the center: the argmin of dmax competes with
            # the second-smallest dmax, everyone else with the smallest.
            thr = best[pr]
            thr[argpos] = second
            member = dmins < thr
            for j, lid in enumerate(need):
                seg = slice(indptr[j], indptr[j + 1])
                self._leaf_set[lid] = frozenset(
                    cols[seg][member[seg]].tolist()
                )
                self._leaf_winner[lid] = int(cols[argpos[j]])
        self._leaf_labelled[need] = True

    # -- batched point location ----------------------------------------------
    def locate_many(self, qs) -> np.ndarray:
        """Leaf id per query row (``-1`` outside the quantized domain) —
        the vectorized quadtree descent."""
        Q = kernels.as_query_array(qs)
        m = Q.shape[0]
        out = np.full(m, -1, dtype=np.intp)
        if m == 0:
            return out
        qx = Q[:, 0]
        qy = Q[:, 1]
        inside = (
            (np.abs(qx - self._root_cx) <= self._root_half)
            & (np.abs(qy - self._root_cy) <= self._root_half)
        )
        idx = np.flatnonzero(inside)
        if idx.size == 0:
            return out
        cur = np.zeros(idx.size, dtype=np.intp)
        cb = self._node_child[cur]
        live = cb >= 0
        while live.any():
            lcur = cur[live]
            quad = (qx[idx[live]] > self._node_cx[lcur]).astype(np.intp) + 2 * (
                qy[idx[live]] > self._node_cy[lcur]
            ).astype(np.intp)
            cur[live] = cb[live] + quad
            cb = self._node_child[cur]
            live = cb >= 0
        out[idx] = self._node_leaf[cur]
        return out

    def _leaf_rows(self, qs) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        Q = kernels.as_query_array(qs)
        leaf = self.locate_many(Q)
        fallback = leaf < 0
        valid = ~fallback
        fallback[valid] = self._leaf_kind[leaf[valid]] == _FALLBACK
        return Q, leaf, fallback

    # -- queries -------------------------------------------------------------
    def expected_nn_many(self, qs) -> ApproxNN:
        """ε-certified expected-distance NN for every query row.

        Settled rows report the exact winner with its expectation
        evaluated exactly at the query (error 0, one grouped model
        evaluation per distinct winner); ε-cell rows are pure label
        lookups with error at most ``eps``; fallback rows are left to
        the caller's exact tier.
        """
        if self.criterion != "expected":
            raise QueryError(
                "expected_nn_many requires criterion='expected'"
            )
        Q, leaf, fallback = self._leaf_rows(qs)
        m = Q.shape[0]
        winners = np.full(m, -1, dtype=np.intp)
        values = np.full(m, np.nan)
        good = ~fallback
        quant = good.copy()
        quant[good] = self._leaf_kind[leaf[good]] == _QUANT
        if quant.any():
            self._ensure_quant_labels(np.unique(leaf[quant]))
        winners[good] = self._leaf_winner[leaf[good]]
        values[quant] = self._leaf_value[leaf[quant]]
        settled = good & ~quant
        rows = np.flatnonzero(settled)
        if rows.size:
            by_winner = winners[rows]
            for w in np.unique(by_winner):
                sub = rows[by_winner == w]
                values[sub] = self.points[int(w)].expected_distance_many(
                    Q[sub]
                )
        return ApproxNN(winners, values, fallback, self.eps, self.rel)

    def nonzero_nn_many(self, qs) -> ApproxSets:
        """ε-relaxed ``NN!=0`` (exact on settled cells) per query row."""
        if self.criterion != "support":
            raise QueryError("nonzero_nn_many requires criterion='support'")
        Q, leaf, fallback = self._leaf_rows(qs)
        good = ~fallback
        quant = good.copy()
        quant[good] = self._leaf_kind[leaf[good]] == _QUANT
        if quant.any():
            self._ensure_quant_labels(np.unique(leaf[quant]))
        sets: List[FrozenSet[int]] = []
        for row in range(Q.shape[0]):
            if fallback[row]:
                sets.append(frozenset())
            elif quant[row]:
                sets.append(self._leaf_set[leaf[row]])
            else:
                sets.append(frozenset([int(self._leaf_winner[leaf[row]])]))
        return ApproxSets(sets, fallback, self.eps, self.rel)

    def threshold_nn_many(
        self, qs, tau: float, certified_only: bool = True
    ) -> ApproxThreshold:
        """Threshold answers where the quantization certifies them.

        Settled singleton cells are exact (``pi_w = 1 > tau``); every
        other row is flagged in the fallback mask.  With
        ``certified_only=False``, flagged rows that hit an ε-cell also
        receive the center's exact sweep over the cell candidates as an
        uncertified estimate (cached per cell).
        """
        if self.criterion != "support":
            raise QueryError("threshold_nn_many requires criterion='support'")
        if not 0.0 <= tau < 1.0:
            raise QueryError("tau must lie in [0, 1)")
        Q, leaf, fallback = self._leaf_rows(qs)
        m = Q.shape[0]
        answers: List[Dict[int, float]] = [{} for _ in range(m)]
        fallback = fallback.copy()
        for row in range(m):
            if fallback[row]:
                continue
            lid = int(leaf[row])
            if self._leaf_kind[lid] == _SETTLED:
                answers[row] = {int(self._leaf_winner[lid]): 1.0}
            else:
                fallback[row] = True
                if not certified_only:
                    answers[row] = {
                        i: v
                        for i, v in self._center_pi(lid).items()
                        if v > tau
                    }
        return ApproxThreshold(answers, fallback, self.eps, self.rel)

    def _center_pi(self, lid: int) -> Dict[int, float]:
        """Quantification probabilities at an ε-cell center, restricted
        to the cell candidates (a superset of the center's ``NN!=0``):
        the Eq. (2) sweep for all-discrete candidates, the Eq. (1)
        quadrature (:func:`continuous_quantification_many`) when no
        candidate is discrete, and ``{}`` for mixed cells (neither
        formula covers both atom and density mass exactly)."""
        if lid not in self._pi_cache:
            j = int(np.searchsorted(self._quant_leaf_ids, lid))
            seg = self._quant_idx[
                self._quant_indptr[j]:self._quant_indptr[j + 1]
            ]
            sub = [self.points[int(i)] for i in seg]
            center = (float(self._leaf_cx[lid]), float(self._leaf_cy[lid]))
            discrete = [p.is_discrete for p in sub]
            if all(discrete):
                pi = quantification_probabilities(sub, center)
            elif not any(discrete):
                pi = continuous_quantification_many(sub, [center])[0]
            else:
                pi = []
            self._pi_cache[lid] = {
                int(seg[t]): float(v) for t, v in enumerate(pi) if v > 0.0
            }
        return self._pi_cache[lid]

    # -- introspection -------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the tree, label, and candidate
        arrays (cached-index accounting for :meth:`repro.Engine.stats`)."""
        return int(
            self._node_cx.nbytes
            + self._node_cy.nbytes
            + self._node_child.nbytes
            + self._node_leaf.nbytes
            + self._leaf_kind.nbytes
            + self._leaf_winner.nbytes
            + self._leaf_cx.nbytes
            + self._leaf_cy.nbytes
            + self._leaf_hd.nbytes
            + self._leaf_value.nbytes
            + self._quant_leaf_ids.nbytes
            + self._quant_indptr.nbytes
            + self._quant_idx.nbytes
        )

    def stats(self) -> Dict[str, float]:
        kinds = self._leaf_kind
        return {
            "n": float(self.columns.n),
            "eps": self.eps,
            "rel": self.rel,
            "criterion": self.criterion,
            "nodes": float(self._node_cx.shape[0]),
            "leaves": float(kinds.shape[0]),
            "settled_leaves": float(int((kinds == _SETTLED).sum())),
            "quant_leaves": float(int((kinds == _QUANT).sum())),
            "fallback_leaves": float(int((kinds == _FALLBACK).sum())),
            "depth": float(self._depth),
            "mean_quant_candidates": (
                float(np.diff(self._quant_indptr).mean())
                if self._quant_idx.size
                else 0.0
            ),
        }
