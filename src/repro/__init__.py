"""repro — Nearest-Neighbor Searching Under Uncertainty.

A from-scratch reproduction of the PODS paper "Nearest-Neighbor
Searching Under Uncertainty II" (Agarwal, Aronov, Har-Peled, Phillips,
Yi, Zhang): nonzero Voronoi diagrams, near-linear NN!=0 indexes, and
exact / Monte-Carlo / spiral-search quantification probabilities, plus
the computational-geometry and indexing substrate they stand on.

Quick start::

    import random
    from repro import UniformDiskPoint, UncertainSet, MonteCarloPNN

    points = [UniformDiskPoint((0, 0), 1), UniformDiskPoint((3, 0), 1)]
    uset = UncertainSet(points)
    print(uset.nonzero_nn((1.4, 0)))       # which points can be the NN?

    mc = MonteCarloPNN(points, epsilon=0.05, seed=1)
    print(mc.query((1.4, 0)))              # how likely is each one?
"""

from . import batch, io
from ._version import __version__
from .config import Tolerances, TOLERANCES, default_rng, tolerances
from .core import (
    ApproxThresholdIndex,
    BranchAndPruneIndex,
    ChebyshevNonzeroIndex,
    ManhattanNonzeroIndex,
    ThresholdAnswer,
    chebyshev_nonzero_nn,
    manhattan_nonzero_nn,
    threshold_nn_exact,
    threshold_nn_exact_many,
    topk_probable_nn_exact,
    DiscreteNonzeroVoronoi,
    DiscreteTwoStageIndex,
    DiskNonzeroIndex,
    ExpectedNNIndex,
    GammaCurve,
    GenericNonzeroIndex,
    LinearScanIndex,
    MonteCarloPNN,
    NonzeroVoronoiDiagram,
    PersistentNonzeroIndex,
    ProbabilisticVoronoiDiagram,
    QueryPlanner,
    SpiralSearchPNN,
    UncertainSet,
    adversarial_instance,
    brute_force_nonzero,
    continuous_quantification,
    continuous_quantification_all,
    disagreement_rate,
    discrete_gamma_census,
    expected_knn,
    expected_knn_many,
    gamma_curves,
    knn_probabilities,
    monte_carlo_knn,
    monte_carlo_knn_many,
    guaranteed_area_estimate,
    guaranteed_owner,
    is_guaranteed,
    nonzero_quantifications,
    nonzero_voronoi_census,
    quantification_naive,
    quantification_probabilities,
    rounds_for_all_queries,
    rounds_for_fixed_query,
    spread,
)
from .errors import (
    DegenerateInputError,
    DistributionError,
    EmptyIndexError,
    GeometryError,
    QueryError,
    ReproError,
)
from .uncertain import (
    DiscreteUncertainPoint,
    HistogramPoint,
    ModelColumns,
    TruncatedGaussianPoint,
    UncertainPoint,
    UniformDiskPoint,
    UniformPolygonPoint,
    UniformRectPoint,
    discretize,
)

__all__ = [
    "ApproxThresholdIndex",
    "BranchAndPruneIndex",
    "ChebyshevNonzeroIndex",
    "DegenerateInputError",
    "DiscreteNonzeroVoronoi",
    "DiscreteTwoStageIndex",
    "DiscreteUncertainPoint",
    "DiskNonzeroIndex",
    "DistributionError",
    "EmptyIndexError",
    "ExpectedNNIndex",
    "GammaCurve",
    "GenericNonzeroIndex",
    "GeometryError",
    "HistogramPoint",
    "LinearScanIndex",
    "ManhattanNonzeroIndex",
    "ModelColumns",
    "MonteCarloPNN",
    "NonzeroVoronoiDiagram",
    "PersistentNonzeroIndex",
    "ProbabilisticVoronoiDiagram",
    "QueryError",
    "QueryPlanner",
    "ReproError",
    "SpiralSearchPNN",
    "TOLERANCES",
    "ThresholdAnswer",
    "Tolerances",
    "TruncatedGaussianPoint",
    "UncertainPoint",
    "UncertainSet",
    "UniformDiskPoint",
    "UniformPolygonPoint",
    "UniformRectPoint",
    "__version__",
    "adversarial_instance",
    "batch",
    "chebyshev_nonzero_nn",
    "brute_force_nonzero",
    "default_rng",
    "continuous_quantification",
    "continuous_quantification_all",
    "disagreement_rate",
    "discrete_gamma_census",
    "discretize",
    "expected_knn",
    "expected_knn_many",
    "gamma_curves",
    "knn_probabilities",
    "monte_carlo_knn",
    "monte_carlo_knn_many",
    "guaranteed_area_estimate",
    "guaranteed_owner",
    "io",
    "is_guaranteed",
    "manhattan_nonzero_nn",
    "nonzero_quantifications",
    "nonzero_voronoi_census",
    "quantification_naive",
    "quantification_probabilities",
    "rounds_for_all_queries",
    "rounds_for_fixed_query",
    "spread",
    "threshold_nn_exact",
    "threshold_nn_exact_many",
    "tolerances",
    "topk_probable_nn_exact",
]
