"""Cooperative deadlines for query execution.

A deadline is a wall-clock budget attached to a scope.  Execution loops
across the stack (tiled bound pass, dual-tree levels, evaluator chunks,
Monte-Carlo rounds) call :func:`check_deadline` at natural unit
boundaries; when the budget is exhausted the check raises
:class:`repro.errors.QueryTimeoutError` carrying the site that noticed,
the elapsed time, and a per-site progress map — the partial diagnostics
of the aborted run.

The active scope lives in a module-level stack rather than a
thread-local so that thread-pool workers fanning out tiles on behalf of
the scoped query observe the same deadline.  Process-pool workers do
not share the stack; their tiles are bounded from the parent side at
result-collection checkpoints.  Deadline scopes are not meant to be
opened concurrently from independent user threads.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator, List, Optional

from ..errors import QueryError, QueryTimeoutError

__all__ = ["Deadline", "deadline_scope", "active_deadline", "check_deadline"]


class Deadline:
    """A running wall-clock budget plus per-site progress counters."""

    __slots__ = ("deadline_s", "started_at", "expires_at", "progress")

    def __init__(self, deadline_s: float):
        if not (float(deadline_s) > 0.0):
            raise QueryError(f"deadline_s must be > 0, got {deadline_s!r}")
        self.deadline_s = float(deadline_s)
        self.started_at = time.monotonic()
        self.expires_at = self.started_at + self.deadline_s
        self.progress: Dict[str, int] = {}

    def elapsed(self) -> float:
        return time.monotonic() - self.started_at

    def remaining(self) -> float:
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def tick(self, site: str) -> None:
        """Record one completed unit at ``site`` and raise if expired."""
        self.progress[site] = self.progress.get(site, 0) + 1
        if self.expired():
            elapsed = self.elapsed()
            raise QueryTimeoutError(
                f"deadline of {self.deadline_s:.6g}s expired after "
                f"{elapsed:.6g}s at checkpoint {site!r}",
                site=site,
                deadline_s=self.deadline_s,
                elapsed_s=elapsed,
                progress=self.progress,
            )


_STACK: List[Deadline] = []


def active_deadline() -> Optional[Deadline]:
    """The innermost active deadline, or ``None``."""
    return _STACK[-1] if _STACK else None


@contextlib.contextmanager
def deadline_scope(deadline_s: Optional[float]) -> Iterator[Optional[Deadline]]:
    """Run the enclosed block under a cooperative deadline.

    ``None`` yields a no-op scope so callers can use one code path for
    bounded and unbounded execution.
    """
    if deadline_s is None:
        yield None
        return
    dl = Deadline(deadline_s)
    _STACK.append(dl)
    try:
        yield dl
    finally:
        _STACK.remove(dl)


def check_deadline(site: str) -> None:
    """Checkpoint: count one unit of progress at ``site`` against the
    active deadline (no-op when no deadline is active)."""
    if _STACK:
        _STACK[-1].tick(site)
