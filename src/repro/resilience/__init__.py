"""Resilient execution layer: deadlines, admission control, snapshots,
and deterministic fault injection.

The execution loops across the stack call :func:`checkpoint` at their
natural unit boundaries (one tile, one traversal level, one evaluator
chunk, one Monte-Carlo round).  A checkpoint does two things, both
no-ops in the happy path:

* fire any deterministically injected fault registered for its site
  (:mod:`repro.resilience.faults`);
* charge one unit of progress against the active cooperative deadline
  (:mod:`repro.resilience.deadline`), raising
  :class:`repro.errors.QueryTimeoutError` when the budget is spent.

:mod:`repro.resilience.admission` implements the memory-budget
estimator behind ``EXECUTION.memory_budget_bytes``;
:mod:`repro.resilience.snapshot` implements ``Engine.save`` /
``Engine.load``.
"""

from __future__ import annotations

from typing import Optional

from . import admission, deadline, faults, retry, snapshot, wal
from .admission import clamp_tile_rows, require_bytes
from .deadline import Deadline, active_deadline, check_deadline, deadline_scope
from .faults import FaultSpec, FaultStats, fault_stats, inject, reset_fault_stats
from .retry import RetryCounters, RetryPolicy, run_with_retry
from .snapshot import load_engine, read_manifest, save_engine
from .wal import WalRecord, WriteAheadLog

__all__ = [
    "admission",
    "deadline",
    "faults",
    "retry",
    "snapshot",
    "checkpoint",
    "clamp_tile_rows",
    "require_bytes",
    "Deadline",
    "active_deadline",
    "check_deadline",
    "deadline_scope",
    "FaultSpec",
    "FaultStats",
    "fault_stats",
    "inject",
    "reset_fault_stats",
    "RetryCounters",
    "RetryPolicy",
    "run_with_retry",
    "load_engine",
    "read_manifest",
    "save_engine",
    "wal",
    "WalRecord",
    "WriteAheadLog",
]


def checkpoint(site: str, index: Optional[int] = None) -> None:
    """One cooperative resilience checkpoint: fire injected faults for
    ``site``/``index``, then charge the active deadline.  Costs two
    truthiness tests when neither harness is active."""
    faults.fire(site, index)
    check_deadline(site)
