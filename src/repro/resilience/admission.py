"""Memory-budget admission control.

When ``EXECUTION.memory_budget_bytes`` is set, two mechanisms keep a
request inside the budget:

* :func:`clamp_tile_rows` — tile-sized *working sets* (the planner's
  bound pass, evaluator chunks, Monte-Carlo round blocks) are auto-tiled
  down so one tile fits the budget.  Only when even a single row over
  the current data set would not fit is the request rejected.
* :func:`require_bytes` — unavoidable *dense outputs* (distance
  matrices, Monte-Carlo count matrices, sample blocks) cannot be tiled
  away, so the estimated allocation is checked up front and the request
  rejected with :class:`repro.errors.ResourceLimitError` — a structured
  refusal instead of an OOM kill mid-query.

Estimates use the same rows x objects x bytes-per-pair arithmetic as the
``tile_bytes`` tiling math, so both knobs speak the same units.
"""

from __future__ import annotations

from typing import Optional

from ..config import EXECUTION
from ..errors import ResourceLimitError
from . import faults as _faults

__all__ = ["budget_bytes", "require_bytes", "clamp_tile_rows"]


def budget_bytes() -> Optional[int]:
    """The active admission budget, or ``None`` when unlimited."""
    budget = EXECUTION.memory_budget_bytes
    return None if budget is None else int(budget)


def require_bytes(nbytes: int, what: str) -> None:
    """Admit or reject an unavoidable allocation of ``nbytes``.

    Raises :class:`ResourceLimitError` when a budget is configured and
    the estimate exceeds it; otherwise a no-op.
    """
    budget = budget_bytes()
    if budget is None:
        return
    _faults.fire("admission")
    nbytes = int(nbytes)
    if nbytes > budget:
        raise ResourceLimitError(
            f"request needs an estimated {nbytes} bytes for {what}, over "
            f"the configured memory budget of {budget} bytes "
            f"(EXECUTION.memory_budget_bytes); shrink the batch or raise "
            f"the budget",
            required_bytes=nbytes, budget_bytes=budget, what=what)


def clamp_tile_rows(rows: int, n: int, bytes_per_pair: int,
                    what: str = "bound-pass tile") -> int:
    """Auto-tile a per-tile row count down to the admission budget.

    ``rows`` is the tile height the ``tile_bytes`` math chose; the
    working set of one tile is roughly ``rows * n * bytes_per_pair``.
    Returns a possibly smaller row count whose tile fits the budget, or
    raises :class:`ResourceLimitError` when even one row does not fit.
    """
    budget = budget_bytes()
    if budget is None or n <= 0:
        return rows
    _faults.fire("admission")
    per_row = max(int(n) * int(bytes_per_pair), 1)
    max_rows = budget // per_row
    if max_rows < 1:
        raise ResourceLimitError(
            f"a single query row over n={n} objects needs an estimated "
            f"{per_row} working bytes for the {what}, over the configured "
            f"memory budget of {budget} bytes "
            f"(EXECUTION.memory_budget_bytes)",
            required_bytes=per_row, budget_bytes=budget, what=what)
    return max(1, min(int(rows), int(max_rows)))
