"""Crash-consistent write-ahead log for durable engine sessions.

Every acknowledged mutation of a durable :class:`repro.Engine`
(``Engine.open_durable``) is appended here *before* the call returns:
recovery = load the latest snapshot, replay the log over it.  The
format is built so that a ``kill -9`` (or power loss, under
``fsync="always"``) at **any** byte boundary recovers to a consistent
prefix of the acknowledged history — never to a half-applied write.

File layout
-----------
``16-byte header`` — magic ``b"REPROWAL"`` + little-endian ``u32``
format version + ``u32`` reserved — followed by a sequence of framed
records::

    [u32 payload_len][u32 crc32(payload)][payload bytes]

The payload is compact UTF-8 JSON: ``{"op": ..., "gen": ..., ...}``.
Ops are ``insert`` / ``remove`` / ``replace`` (engine mutations, each
stamped with the generation the engine holds *after* applying it) and
``snapshot-marker`` (the first record of every log file, naming the
generation of the snapshot the log is based on).  Generations increase
by exactly one per mutation record, which is what makes replay — and
crash-safe log rotation — idempotent: records whose generation is
already covered by the loaded snapshot are skipped.

Failure semantics
-----------------
* **Torn tail** — a crash mid-append leaves a final frame that is
  short, or whose CRC fails.  :func:`scan` detects it and recovery
  truncates the file back to the last whole record instead of refusing
  to open; the un-acked write is simply gone.
* **Interior corruption** — a bad CRC (or undecodable payload) *before*
  the final record cannot come from a torn append; it means the file
  was damaged after the fact.  That raises
  :class:`repro.errors.WalCorruptionError` carrying the byte offset —
  corrupt history never silently loads.
* **fsync policy** — ``config.DURABILITY.fsync`` picks what an ack
  means (see :class:`repro.config.Durability`).  Every append is
  flushed to the OS before returning under every policy, so process
  death never loses an acknowledged write; only power loss is
  policy-dependent.

Fault sites ``wal.append`` (fired *between* the two halves of a frame
write, after flushing the first half — a kill there leaves a real torn
record), ``wal.fsync`` (after flush, before ``os.fsync``), and
``wal.rotate`` (between preparing the fresh log and publishing it) let
the chaos harness SIGKILL the process at every interesting point.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import threading
import time
import zlib
from typing import Dict, List, Optional, Tuple

from ..config import DURABILITY
from ..errors import WalCorruptionError, WalError
from . import faults as _faults

__all__ = [
    "MAGIC",
    "VERSION",
    "WalRecord",
    "WriteAheadLog",
    "scan",
    "OPS",
]

MAGIC = b"REPROWAL"
VERSION = 1
_HEADER = MAGIC + struct.pack("<II", VERSION, 0)
_FRAME = struct.Struct("<II")

#: Documented record operations.
OPS = ("insert", "remove", "replace", "snapshot-marker")


@dataclasses.dataclass(frozen=True)
class WalRecord:
    """One decoded log record: the op, the post-apply generation, the
    op-specific payload fields, and the frame's byte offset."""

    op: str
    gen: int
    payload: Dict[str, object]
    offset: int


def _decode(payload: bytes, offset: int, path: str) -> WalRecord:
    try:
        data = json.loads(payload.decode("utf-8"))
        op = data.pop("op")
        gen = int(data.pop("gen"))
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        # The CRC matched, so this is a writer bug or deliberate
        # tampering, not a torn write — refuse loudly either way.
        raise WalCorruptionError(
            f"WAL record at offset {offset} in {path!r} passed its "
            f"checksum but does not decode: {exc}",
            path=path, reason="decode", offset=offset,
        ) from exc
    if op not in OPS:
        raise WalCorruptionError(
            f"WAL record at offset {offset} in {path!r} names unknown "
            f"op {op!r}",
            path=path, reason="decode", offset=offset,
        )
    return WalRecord(op=op, gen=gen, payload=data, offset=offset)


def scan(path: str) -> Tuple[List[WalRecord], int, int]:
    """Read and validate every record of the log at ``path``.

    Returns ``(records, valid_end, torn_bytes)``: the decoded records,
    the byte offset at which the valid prefix ends, and how many torn
    trailing bytes follow it (``0`` for a cleanly closed log).  Raises
    :class:`WalError` for a bad header and
    :class:`WalCorruptionError` for interior damage.
    """
    try:
        with open(path, "rb") as f:
            buf = f.read()
    except OSError as exc:
        raise WalError(
            f"cannot read WAL {path!r}: {exc}", path=path, reason="io"
        ) from exc
    if len(buf) < len(_HEADER) or buf[: len(MAGIC)] != MAGIC:
        raise WalError(
            f"{path!r} is not a {MAGIC.decode()} write-ahead log",
            path=path, reason="magic",
        )
    version, _reserved = struct.unpack_from("<II", buf, len(MAGIC))
    if version != VERSION:
        raise WalError(
            f"WAL {path!r} has format version {version}; this library "
            f"reads version {VERSION}",
            path=path, reason="version",
        )
    records: List[WalRecord] = []
    pos = len(_HEADER)
    size = len(buf)
    while pos < size:
        if pos + _FRAME.size > size:
            break  # torn tail: not even a whole frame header
        length, crc = _FRAME.unpack_from(buf, pos)
        end = pos + _FRAME.size + length
        if end > size:
            break  # torn tail: payload extends past EOF
        payload = buf[pos + _FRAME.size : end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            if end == size:
                break  # torn tail: the final frame's bytes are partial
            raise WalCorruptionError(
                f"WAL record at offset {pos} in {path!r} fails its CRC "
                f"with {size - end} valid-looking bytes after it — the "
                f"log is corrupted, not torn",
                path=path, reason="crc", offset=pos,
            )
        records.append(_decode(payload, pos, path))
        pos = end
    return records, pos, size - pos


def _fsync_directory(directory: str) -> None:
    """Flush the directory entry of a just-created/renamed file (best
    effort: not every platform allows ``open(dir)`` + ``fsync``)."""
    try:
        dfd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dfd)
    except OSError:
        pass
    finally:
        os.close(dfd)


class WriteAheadLog:
    """An append-only, CRC-framed mutation log with a configurable
    fsync policy and crash-safe rotation.

    Use :meth:`open` — it creates a fresh log (header + snapshot
    marker) or recovers an existing one, truncating a torn tail.  The
    records present at open time are exposed as :attr:`records` for the
    owner to replay; appends after open are not added to that list.

    ``fsync=`` overrides the global :data:`repro.config.DURABILITY`
    policy per log (``None`` = follow the global knob live).
    """

    def __init__(self, *_, **__):
        raise TypeError("use WriteAheadLog.open(path, base_generation=...)")

    @classmethod
    def _new(cls) -> "WriteAheadLog":
        self = object.__new__(cls)
        self._lock = threading.RLock()
        self._file = None
        self._size = 0
        self._record_count = 0
        self.path = None
        self.records: List[WalRecord] = []
        self.torn_bytes = 0
        self._fsync_override: Optional[str] = None
        self._last_fsync = time.monotonic()
        self._dirty = False
        # Telemetry (surfaced through Engine.stats()["wal"]).
        self.appends = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.fsync_seconds = 0.0
        self.rotations = 0
        return self

    # -- construction ---------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str,
        *,
        base_generation: int = 0,
        base_n: int = 0,
        fsync: Optional[str] = None,
    ) -> "WriteAheadLog":
        """Open (or create) the log at ``path``.

        A fresh log gets the versioned header plus a ``snapshot-marker``
        record naming ``base_generation`` — the generation of the
        snapshot this log is relative to.  An existing log is scanned:
        a torn final record is truncated away (counted in
        :attr:`torn_bytes`), interior corruption raises
        :class:`WalCorruptionError`.
        """
        self = cls._new()
        self.path = os.fspath(path)
        self._fsync_override = fsync
        if os.path.exists(self.path):
            records, valid_end, torn = scan(self.path)
            self.records = records
            self.torn_bytes = torn
            try:
                f = open(self.path, "r+b")
                if torn:
                    # A crash mid-append left a partial frame; drop it.
                    # The write it belonged to was never acknowledged.
                    f.truncate(valid_end)
                f.seek(valid_end)
            except OSError as exc:
                raise WalError(
                    f"cannot open WAL {self.path!r} for append: {exc}",
                    path=self.path, reason="io",
                ) from exc
            self._file = f
            self._size = valid_end
            self._record_count = len(records)
            if not records:
                # Crash between header write and marker append: the log
                # carries no base; stamp it now.
                self._append_marker(base_generation, base_n)
        else:
            self._create(base_generation, base_n)
        return self

    def _create(self, base_generation: int, base_n: int) -> None:
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        try:
            f = open(self.path, "w+b")
            f.write(_HEADER)
            f.flush()
        except OSError as exc:
            raise WalError(
                f"cannot create WAL {self.path!r}: {exc}",
                path=self.path, reason="io",
            ) from exc
        self._file = f
        self._size = len(_HEADER)
        self._append_marker(base_generation, base_n)
        self._fsync_now()
        _fsync_directory(directory)

    def _append_marker(self, base_generation: int, base_n: int) -> None:
        self._write_record(
            "snapshot-marker",
            {"n": int(base_n)},
            int(base_generation),
            fire=False,
        )
        self._fsync_now()

    # -- introspection --------------------------------------------------------
    @property
    def base_generation(self) -> Optional[int]:
        """Generation of the snapshot this log is based on (from the
        leading ``snapshot-marker``; ``None`` if the log has none)."""
        for rec in self.records:
            if rec.op == "snapshot-marker":
                return rec.gen
        return None

    @property
    def size_bytes(self) -> int:
        return self._size

    @property
    def record_count(self) -> int:
        """Records currently in the file (replayed + appended)."""
        return self._record_count

    @property
    def closed(self) -> bool:
        return self._file is None

    def fsync_policy(self) -> str:
        return self._fsync_override or DURABILITY.fsync

    def stats(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "records": self._record_count,
            "size_bytes": self._size,
            "appends": self.appends,
            "bytes_written": self.bytes_written,
            "fsyncs": self.fsyncs,
            "fsync_seconds": self.fsync_seconds,
            "fsync_policy": self.fsync_policy(),
            "rotations": self.rotations,
            "torn_bytes_truncated": self.torn_bytes,
        }

    # -- appends --------------------------------------------------------------
    def append(self, op: str, payload: Dict[str, object], generation: int) -> int:
        """Frame, append, flush, and (per policy) fsync one record.

        Returns the record's byte offset.  When this returns, the
        record is in the OS page cache at minimum — durable against
        process death; against power loss per the fsync policy.
        """
        if op not in OPS:
            raise WalError(f"unknown WAL op {op!r}", path=self.path,
                           reason="io")
        with self._lock:
            offset = self._write_record(op, payload, int(generation))
            self._maybe_fsync()
            return offset

    def _write_record(
        self, op: str, payload: Dict[str, object], generation: int,
        fire: bool = True,
    ) -> int:
        if self._file is None:
            raise WalError(
                f"WAL {self.path!r} is closed", path=self.path,
                reason="closed",
            )
        body = json.dumps(
            {"op": op, "gen": generation, **payload},
            separators=(",", ":"),
        ).encode("utf-8")
        frame = _FRAME.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body
        offset = self._size
        f = self._file
        try:
            if fire and _faults.active():
                # Land the first half of the frame in the OS page cache
                # before the checkpoint: a SIGKILL fired here leaves a
                # genuinely torn record for recovery to truncate.
                split = max(1, len(frame) // 2)
                f.write(frame[:split])
                f.flush()
                _faults.fire("wal.append", self._record_count)
                f.write(frame[split:])
            else:
                f.write(frame)
            f.flush()
        except OSError as exc:
            raise WalError(
                f"cannot append to WAL {self.path!r}: {exc}",
                path=self.path, reason="io",
            ) from exc
        self._size += len(frame)
        self._record_count += 1
        self.appends += 1
        self.bytes_written += len(frame)
        self._dirty = True
        return offset

    def _maybe_fsync(self) -> None:
        policy = self.fsync_policy()
        if policy == "always":
            self._fsync_now()
        elif policy == "interval":
            if time.monotonic() - self._last_fsync >= DURABILITY.fsync_interval_s:
                self._fsync_now()
        # "off": the kernel writes back on its own schedule.

    def _fsync_now(self) -> None:
        if self._file is None or not self._dirty:
            return
        _faults.fire("wal.fsync", self._record_count)
        started = time.perf_counter()
        try:
            os.fsync(self._file.fileno())
        except OSError as exc:
            raise WalError(
                f"cannot fsync WAL {self.path!r}: {exc}",
                path=self.path, reason="io",
            ) from exc
        self.fsync_seconds += time.perf_counter() - started
        self.fsyncs += 1
        self._last_fsync = time.monotonic()
        self._dirty = False

    def sync(self) -> None:
        """Force an fsync regardless of policy (close/rotate use it)."""
        with self._lock:
            self._fsync_now()

    # -- rotation -------------------------------------------------------------
    def rotate(self, *, base_generation: int, base_n: int = 0) -> None:
        """Atomically replace the log with a fresh one based on
        ``base_generation`` (the generation of the snapshot the caller
        just published).

        Crash-safe at every step: the fresh log is fully written and
        fsynced under a temp name first, then ``os.replace``d over the
        live one.  A crash before the replace leaves the old log — its
        records are all ≤ ``base_generation`` and replay skips them; a
        crash after leaves the new log.  Either way recovery is exact.
        """
        with self._lock:
            if self._file is None:
                raise WalError(
                    f"WAL {self.path!r} is closed", path=self.path,
                    reason="closed",
                )
            directory = os.path.dirname(os.path.abspath(self.path)) or "."
            tmp = self.path + ".new"
            body = json.dumps(
                {"op": "snapshot-marker", "gen": int(base_generation),
                 "n": int(base_n)},
                separators=(",", ":"),
            ).encode("utf-8")
            frame = (
                _FRAME.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body
            )
            try:
                with open(tmp, "wb") as f:
                    f.write(_HEADER + frame)
                    f.flush()
                    os.fsync(f.fileno())
                _faults.fire("wal.rotate", 1)
                os.replace(tmp, self.path)
                _fsync_directory(directory)
                self._file.close()
                self._file = open(self.path, "r+b")
                self._file.seek(0, os.SEEK_END)
            except OSError as exc:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise WalError(
                    f"cannot rotate WAL {self.path!r}: {exc}",
                    path=self.path, reason="io",
                ) from exc
            self._size = len(_HEADER) + len(frame)
            self._record_count = 1
            self.records = []
            self.torn_bytes = 0
            self._dirty = False
            self._last_fsync = time.monotonic()
            self.rotations += 1

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Fsync outstanding bytes and close (idempotent)."""
        with self._lock:
            if self._file is None:
                return
            try:
                self._fsync_now()
            finally:
                self._file.close()
                self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"WriteAheadLog({self.path!r}, {state}, "
            f"records={self._record_count}, bytes={self._size}, "
            f"fsync={self.fsync_policy()!r})"
        )
