"""Versioned engine snapshots: ``Engine.save(path)`` / ``Engine.load(path)``.

A snapshot is a single ``.npz`` holding

* ``manifest`` — JSON header: magic string, format version, dataset
  size, generation counter, model histogram, the registry keys that
  were built at save time (a *rebuild-on-miss manifest*: restored
  engines rebuild those structures lazily on their first use, so a
  restore is never blocked on index construction), and a SHA-256
  checksum over the payload;
* ``points`` — the uncertain relation as UTF-8 JSON via :mod:`repro.io`
  (JSON round-trips IEEE doubles exactly, so restored models are
  bit-identical);
* ``col_*`` — the :class:`~repro.uncertain.columns.ModelColumns`
  arrays, written so a restore installs the summarised column store
  directly instead of re-summarising every point.

Writes are atomic and durable (temp file in the target directory,
``fsync``, then ``os.replace``; the temp file is removed on any
failure), so a crash mid-save never leaves a half-written snapshot —
or a stray temp file — at the target path.  Loads
validate magic, version, checksum, and cross-array consistency and
raise :class:`repro.errors.SnapshotError` on any problem — a corrupted
or truncated snapshot never loads garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

import numpy as np

from .. import io as _io
from ..errors import ReproError, SnapshotError
from ..uncertain.columns import ModelColumns
from . import faults as _faults

__all__ = ["MAGIC", "VERSION", "save_engine", "load_engine", "read_manifest"]

MAGIC = "repro-engine-snapshot"
VERSION = 1


def _checksum(points_bytes: bytes, col_arrays: Optional[Dict[str, np.ndarray]]) -> str:
    """SHA-256 over the payload in a fixed, schema-defined order."""
    h = hashlib.sha256()
    h.update(points_bytes)
    if col_arrays is not None:
        for name in ModelColumns.ARRAY_FIELDS:
            arr = np.ascontiguousarray(col_arrays[name])
            h.update(name.encode("utf-8"))
            h.update(str(arr.dtype).encode("utf-8"))
            h.update(str(arr.shape).encode("utf-8"))
            h.update(arr.tobytes())
    return h.hexdigest()


def save_engine(engine, path: str) -> str:
    """Write a versioned snapshot of ``engine`` to ``path``.

    Returns the path written.  Raises :class:`SnapshotError` on I/O
    failure; the write is atomic, so ``path`` either holds the previous
    content or a complete new snapshot, never a torn one.
    """
    from ..engine import _key_label  # localised: engine imports this module

    points_bytes = _io.dumps(engine.points).encode("utf-8")
    col_arrays = None
    if len(engine):
        # Build (or fetch) the column store so restores skip
        # per-point re-summarisation entirely.
        col_arrays = {
            name: np.ascontiguousarray(arr)
            for name, arr in engine.columns().arrays().items()
        }
    manifest = {
        "magic": MAGIC,
        "version": VERSION,
        "n": len(engine),
        "generation": engine.generation,
        "models": engine.model_histogram() if len(engine) else {},
        "built_indexes": [
            _key_label(k) for k in engine.registry.keys(engine.generation)
        ],
        "checksum": _checksum(points_bytes, col_arrays),
    }
    payload = {
        "manifest": np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        ),
        "points": np.frombuffer(points_bytes, dtype=np.uint8),
    }
    if col_arrays is not None:
        for name, arr in col_arrays.items():
            payload[f"col_{name}"] = arr
    _faults.fire("snapshot.write")
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd, tmp = tempfile.mkstemp(
            prefix=".repro-snapshot-", suffix=".npz.tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez(f, **payload)
                # Durability before visibility: the payload must be on
                # stable storage before the rename can publish it, or a
                # power loss could leave a complete-looking but empty
                # snapshot at the target path.
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
            _fsync_directory(directory)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError as exc:
        raise SnapshotError(
            f"cannot write snapshot to {path!r}: {exc}", path=path, reason="io"
        ) from exc
    return path


def _fsync_directory(directory: str) -> None:
    """Flush the directory entry of a just-renamed file (best effort:
    not every platform/filesystem allows ``open(dir)`` + ``fsync``)."""
    try:
        dfd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dfd)
    except OSError:
        pass
    finally:
        os.close(dfd)


def read_manifest(path: str) -> Dict[str, object]:
    """Read and validate just the manifest header of a snapshot."""
    with _open(path) as data:
        return _manifest(data, path)


def _open(path: str):
    try:
        return np.load(path, allow_pickle=False)
    except FileNotFoundError as exc:
        raise SnapshotError(
            f"snapshot file {path!r} does not exist", path=path, reason="io"
        ) from exc
    except ReproError:
        raise
    except Exception as exc:
        # Truncated zip members, bad headers, non-npz files: numpy and
        # zipfile raise a zoo of exception types here, all of which mean
        # the same thing for the caller.
        raise SnapshotError(
            f"cannot read snapshot {path!r} (corrupted or not a snapshot): "
            f"{exc}",
            path=path, reason="truncated",
        ) from exc


def _manifest(data, path: str) -> Dict[str, object]:
    if "manifest" not in data:
        raise SnapshotError(
            f"{path!r} has no snapshot manifest", path=path, reason="magic"
        )
    try:
        manifest = json.loads(bytes(data["manifest"]).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(
            f"snapshot manifest in {path!r} is not valid JSON",
            path=path, reason="schema",
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("magic") != MAGIC:
        raise SnapshotError(
            f"{path!r} is not a {MAGIC} file", path=path, reason="magic"
        )
    version = manifest.get("version")
    if version != VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has format version {version!r}; this "
            f"library reads version {VERSION}",
            path=path, reason="version",
        )
    return manifest


def load_engine(path: str, result_cache_size: int = 32):
    """Restore an :class:`repro.Engine` from a snapshot written by
    :func:`save_engine`.

    The restored engine answers every query bit-identically to the
    saved one: the point relation round-trips exactly through JSON and
    the summarised column store is installed verbatim.  Indexes listed
    in the manifest rebuild lazily on their first miss.
    """
    from ..engine import Engine

    with _open(path) as data:
        manifest = _manifest(data, path)
        try:
            try:
                points_bytes = bytes(data["points"])
            except KeyError as exc:
                raise SnapshotError(
                    f"snapshot {path!r} is missing its points payload",
                    path=path, reason="schema",
                ) from exc
            col_arrays = None
            if int(manifest.get("n", 0)) > 0:
                try:
                    col_arrays = {
                        name: np.asarray(data[f"col_{name}"])
                        for name in ModelColumns.ARRAY_FIELDS
                    }
                except KeyError as exc:
                    raise SnapshotError(
                        f"snapshot {path!r} is missing column array {exc}",
                        path=path, reason="schema",
                    ) from exc
        except ReproError:
            raise
        except Exception as exc:
            # npz members decompress lazily; CRC errors and truncated
            # streams surface here rather than at open time.
            raise SnapshotError(
                f"snapshot {path!r} payload is corrupted: {exc}",
                path=path, reason="truncated",
            ) from exc
        digest = _checksum(points_bytes, col_arrays)
        if digest != manifest.get("checksum"):
            raise SnapshotError(
                f"snapshot {path!r} failed checksum validation (stored "
                f"{manifest.get('checksum')!r}, computed {digest!r}) — the "
                f"file is corrupted",
                path=path, reason="checksum",
            )
        try:
            points = _io.loads(points_bytes.decode("utf-8"))
        except (ReproError, UnicodeDecodeError) as exc:
            raise SnapshotError(
                f"snapshot {path!r} holds an undecodable relation: {exc}",
                path=path, reason="schema",
            ) from exc
        if len(points) != int(manifest.get("n", -1)):
            raise SnapshotError(
                f"snapshot {path!r} manifest says n={manifest.get('n')} but "
                f"the relation holds {len(points)} points",
                path=path, reason="schema",
            )
        engine = Engine(points, result_cache_size=result_cache_size)
        engine._generation = int(manifest.get("generation", 0))
        if col_arrays is not None:
            try:
                cols = ModelColumns.from_arrays(col_arrays)
            except ValueError as exc:
                raise SnapshotError(
                    f"snapshot {path!r} holds inconsistent column arrays: "
                    f"{exc}",
                    path=path, reason="schema",
                ) from exc
            if cols.n != len(points):
                raise SnapshotError(
                    f"snapshot {path!r} column store covers {cols.n} rows "
                    f"for {len(points)} points",
                    path=path, reason="schema",
                )
            engine.registry.put(("columns",), engine.generation, cols)
        return engine
