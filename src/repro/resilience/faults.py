"""Deterministic fault injection at named execution sites.

Tests (and the CI fault-injection leg) wrap code in
:func:`inject` with one or more :class:`FaultSpec`\\ s; every resilience
checkpoint then calls :func:`fire` with its site name and, where
meaningful, a unit index.  Matching specs trigger their fault:

* ``"crash"`` — raise :class:`repro.errors.WorkerCrashError` (a
  recoverable in-worker failure; ``map_tiles`` retries the tile).
* ``"kill"``  — hard-exit the current process (``os._exit``), which in a
  process-pool worker surfaces as ``BrokenProcessPool`` in the parent.
* ``"slow"``  — sleep ``delay_s`` (used to trip deadlines on demand).
* ``"alloc"`` — raise :class:`repro.errors.ResourceLimitError`,
  simulating an allocation failure.

Injection is deterministic: a spec fires at explicit unit ``indices``
and/or for its first ``times`` matching calls — never randomly.  The
plan is exported through the ``REPRO_FAULT_PLAN`` environment variable
so process-pool workers see it under any start method (fork inherits
the globals anyway; spawn re-reads the env).

Recovery paths run under :func:`suppressed` so a retried tile does not
re-fire its fault — the harness models transient faults, which is what
the serial-retry recovery strategy is designed for.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import QueryError, ResourceLimitError, WorkerCrashError

__all__ = ["FaultSpec", "FaultStats", "inject", "fire", "suppressed",
           "active", "fault_stats", "reset_fault_stats", "collecting",
           "adopting", "current_collectors", "KINDS", "SITES"]

KINDS = ("crash", "kill", "slow", "alloc")

#: Documented checkpoint sites.  ``fire``/``check_deadline`` accept any
#: string; this tuple is the reference list used in docs and validation.
SITES = (
    "parallel.tile",      # one map_tiles / map_ordered work unit
    "dual_tree.level",    # one dual-tree traversal level
    "dual_tree.refine",   # one dual-tree refinement chunk
    "evaluators.chunk",   # one grouped-evaluator pair chunk
    "mc.round",           # one Monte-Carlo round (or round block)
    "planner.tile",       # one planner bound-pass tile
    "engine.chunk",       # one degrade-mode row chunk
    "admission",          # one admission-control estimate
    "snapshot.write",     # one snapshot payload write
    "cluster.heartbeat",  # one shard-worker idle heartbeat
    "cluster.shard_query",  # one per-shard query request
    "wal.append",         # one WAL record append (fires mid-frame)
    "wal.fsync",          # one WAL fsync (after flush, before sync)
    "wal.rotate",         # one WAL compaction rotation step
)

_ENV_KEY = "REPRO_FAULT_PLAN"


@dataclasses.dataclass
class FaultSpec:
    """One deterministic fault: *what* happens *where* and *when*.

    Attributes
    ----------
    site:
        Checkpoint site name (see :data:`SITES`).
    kind:
        One of :data:`KINDS`.
    indices:
        Fire only when the checkpoint reports one of these unit indices
        (``None`` = any index, including checkpoints with no index).
    times:
        Maximum number of firings (``None`` = unlimited).  Counted per
        process; with explicit ``indices`` the behaviour is fully
        deterministic across process pools too.
    delay_s:
        Sleep duration for ``kind="slow"``.
    """

    site: str
    kind: str
    indices: Optional[Tuple[int, ...]] = None
    times: Optional[int] = 1
    delay_s: float = 0.0
    fired: int = dataclasses.field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise QueryError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if not isinstance(self.site, str) or not self.site:
            raise QueryError(f"fault site must be a non-empty string, "
                             f"got {self.site!r}")
        if self.indices is not None:
            self.indices = tuple(int(i) for i in self.indices)
        if self.times is not None and int(self.times) <= 0:
            raise QueryError(f"times must be positive or None, got {self.times!r}")
        if float(self.delay_s) < 0.0:
            raise QueryError(f"delay_s must be >= 0, got {self.delay_s!r}")

    def to_dict(self) -> Dict[str, object]:
        return {"site": self.site, "kind": self.kind,
                "indices": list(self.indices) if self.indices is not None else None,
                "times": self.times, "delay_s": self.delay_s}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        indices = data.get("indices")
        return cls(site=str(data["site"]), kind=str(data["kind"]),
                   indices=tuple(indices) if indices is not None else None,
                   times=data.get("times"), delay_s=float(data.get("delay_s", 0.0)))


_PLAN: List[FaultSpec] = []
_SUPPRESS = 0

#: Counter keys tracked by every :class:`FaultStats` bundle.
_STAT_KEYS = (
    "injected",          # faults actually fired in this process
    "worker_crashes",    # WorkerCrashError caught by map_tiles
    "pools_broken",      # BrokenProcessPool events recovered from
    "tiles_retried",     # tiles re-run serially after a failure
)


class FaultStats:
    """A scoped bundle of fault/recovery counters.

    Each :class:`repro.Engine` owns one (surfaced via
    ``stats()["faults"]``) so two engines running concurrently never
    cross-contaminate each other's recovery accounting.  The module
    keeps one aggregate bundle — the process-wide view that
    :func:`fault_stats` has always returned.
    """

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {k: 0 for k in _STAT_KEYS}

    def record(self, key: str, count: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + count

    def reset(self) -> None:
        for key in list(self.counters):
            self.counters[key] = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.counters)


#: Process-wide aggregate (the historical module-level view).
_AGGREGATE = FaultStats()

# Per-thread stack of additional collectors; an Engine pushes its own
# bundle around dispatch so recovery events are attributed to it.  Pool
# worker threads adopt the submitting thread's collectors (see
# ``current_collectors`` / ``adopting`` and repro.core.parallel).
_TLS = threading.local()


def _collector_stack() -> List[FaultStats]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def current_collectors() -> Tuple[FaultStats, ...]:
    """The live collector stack of this thread (picklable-free tuple,
    passed by reference into worker threads)."""
    return tuple(_collector_stack())


@contextlib.contextmanager
def collecting(stats: FaultStats) -> Iterator[FaultStats]:
    """Attribute all fault/recovery events in this block to ``stats``
    (in addition to the process aggregate and any enclosing scopes)."""
    stack = _collector_stack()
    stack.append(stats)
    try:
        yield stats
    finally:
        stack.remove(stats)


@contextlib.contextmanager
def adopting(collectors: Sequence[FaultStats]) -> Iterator[None]:
    """Adopt another thread's collector stack (worker threads of a
    thread pool run tiles on behalf of the submitting query)."""
    stack = _collector_stack()
    added = [c for c in collectors if c is not None]
    stack.extend(added)
    try:
        yield
    finally:
        for c in added:
            try:
                stack.remove(c)
            except ValueError:
                pass


def fault_stats() -> Dict[str, int]:
    """Snapshot of the process-wide aggregate fault/recovery counters."""
    return _AGGREGATE.as_dict()


def reset_fault_stats() -> None:
    _AGGREGATE.reset()


def _record(key: str, count: int = 1) -> None:
    _AGGREGATE.record(key, count)
    for collector in _collector_stack():
        collector.record(key, count)


def _active_plan() -> List[FaultSpec]:
    if _PLAN:
        return _PLAN
    raw = os.environ.get(_ENV_KEY)
    if not raw:
        return _PLAN
    # A process-pool child (spawn start method) inherits the plan via the
    # environment; hydrate it once into the module global.
    try:
        specs = [FaultSpec.from_dict(d) for d in json.loads(raw)]
    except (ValueError, KeyError, TypeError):
        return _PLAN
    _PLAN.extend(specs)
    return _PLAN


@contextlib.contextmanager
def suppressed() -> Iterator[None]:
    """Disable fault firing for the enclosed block (used by recovery)."""
    global _SUPPRESS
    _SUPPRESS += 1
    try:
        yield
    finally:
        _SUPPRESS -= 1


def active() -> bool:
    """Whether any fault plan could fire right now (injected in-process
    or inherited via ``REPRO_FAULT_PLAN``).  Checkpoints that must do
    extra work *before* a fault can land — e.g. the WAL flushing a
    half-written frame so a kill produces a genuinely torn record —
    gate that work on this, keeping the happy path at one env lookup."""
    if _SUPPRESS:
        return False
    return bool(_PLAN) or _ENV_KEY in os.environ


def fire(site: str, index: Optional[int] = None) -> None:
    """Fire any matching injected fault at ``site`` / ``index``.

    No-op unless an :func:`inject` scope is active (checked first, so
    production checkpoints cost one truthiness test).
    """
    if not _PLAN and _ENV_KEY not in os.environ:
        return
    if _SUPPRESS:
        return
    for spec in _active_plan():
        if spec.site != site:
            continue
        if spec.indices is not None and (index is None or int(index) not in spec.indices):
            continue
        if spec.times is not None and spec.fired >= spec.times:
            continue
        spec.fired += 1
        _record("injected")
        if spec.kind == "slow":
            time.sleep(spec.delay_s)
        elif spec.kind == "crash":
            raise WorkerCrashError(
                f"injected worker crash at {site!r} (unit {index})",
                site=site, index=index)
        elif spec.kind == "alloc":
            raise ResourceLimitError(
                f"injected allocation failure at {site!r} (unit {index})",
                what=f"injected fault at {site}")
        elif spec.kind == "kill":
            os._exit(17)


@contextlib.contextmanager
def inject(*specs: FaultSpec) -> Iterator[List[FaultSpec]]:
    """Activate deterministic fault specs for the enclosed block.

    Nestable; each scope removes exactly the specs it added.  The plan
    is mirrored into ``REPRO_FAULT_PLAN`` so process-pool workers
    observe it regardless of start method.
    """
    for spec in specs:
        if not isinstance(spec, FaultSpec):
            raise QueryError(f"inject() takes FaultSpec instances, got {spec!r}")
    added = list(specs)
    _PLAN.extend(added)
    saved_env = os.environ.get(_ENV_KEY)
    os.environ[_ENV_KEY] = json.dumps([s.to_dict() for s in _PLAN])
    try:
        yield added
    finally:
        for spec in added:
            try:
                _PLAN.remove(spec)
            except ValueError:
                pass
        if _PLAN:
            os.environ[_ENV_KEY] = json.dumps([s.to_dict() for s in _PLAN])
        elif saved_env is not None:
            os.environ[_ENV_KEY] = saved_env
        else:
            os.environ.pop(_ENV_KEY, None)
