"""Deterministic retry/backoff policy for supervised components.

The cluster supervisor (and anything else that re-issues failed work)
needs retries that are *reproducible*: the same failure sequence must
produce the same delays and the same give-up point on every run, or the
failover-identity assertions in the test suite and benchmarks would be
racing a random number generator.  :class:`RetryPolicy` therefore
derives its jitter from a SHA-256 hash of ``(seed, site, attempt)`` —
deterministic, but still decorrelated across sites and attempts so a
thundering herd of shards does not retry in lockstep.

:class:`RetryCounters` accumulates per-site attempt/exhaustion counts;
the supervisor surfaces them through ``stats()["cluster"]["retries"]``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Callable, Dict, Optional, Tuple

from ..errors import QueryError

__all__ = ["RetryPolicy", "RetryCounters", "run_with_retry"]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded (deterministic) jitter.

    ``delay_s(site, attempt)`` is a pure function of the policy and its
    arguments: ``base_delay_s * backoff**attempt``, scaled by a jitter
    factor in ``[1 - jitter, 1 + jitter]`` drawn from a hash of
    ``(seed, site, attempt)``.
    """

    attempts: int = 3
    base_delay_s: float = 0.05
    backoff: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    max_delay_s: float = 5.0

    def __post_init__(self) -> None:
        if int(self.attempts) < 1:
            raise QueryError(
                f"retry attempts must be >= 1, got {self.attempts!r}")
        if float(self.base_delay_s) < 0.0:
            raise QueryError(
                f"base_delay_s must be >= 0, got {self.base_delay_s!r}")
        if float(self.backoff) < 1.0:
            raise QueryError(
                f"backoff must be >= 1, got {self.backoff!r}")
        if not 0.0 <= float(self.jitter) <= 1.0:
            raise QueryError(
                f"jitter must lie in [0, 1], got {self.jitter!r}")

    @classmethod
    def from_config(cls) -> "RetryPolicy":
        """The policy described by :data:`repro.config.CLUSTER`."""
        from ..config import CLUSTER

        return cls(
            attempts=CLUSTER.retry_attempts,
            base_delay_s=CLUSTER.retry_base_delay_s,
            backoff=CLUSTER.retry_backoff,
            jitter=CLUSTER.retry_jitter,
            seed=CLUSTER.retry_seed,
        )

    def jitter_factor(self, site: str, attempt: int) -> float:
        """Deterministic factor in ``[1 - jitter, 1 + jitter]``."""
        if self.jitter == 0.0:
            return 1.0
        digest = hashlib.sha256(
            f"{self.seed}:{site}:{attempt}".encode()
        ).digest()
        frac = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return 1.0 + self.jitter * (2.0 * frac - 1.0)

    def delay_s(self, site: str, attempt: int) -> float:
        """Backoff delay before retry number ``attempt`` (0-based)."""
        raw = self.base_delay_s * (self.backoff ** attempt)
        return min(self.max_delay_s, raw * self.jitter_factor(site, attempt))


class RetryCounters:
    """Per-site retry accounting: attempts made, retries issued, sites
    that exhausted their budget."""

    __slots__ = ("attempts", "retries", "exhausted")

    def __init__(self) -> None:
        self.attempts: Dict[str, int] = {}
        self.retries: Dict[str, int] = {}
        self.exhausted: Dict[str, int] = {}

    def note_attempt(self, site: str) -> None:
        self.attempts[site] = self.attempts.get(site, 0) + 1

    def note_retry(self, site: str) -> None:
        self.retries[site] = self.retries.get(site, 0) + 1

    def note_exhausted(self, site: str) -> None:
        self.exhausted[site] = self.exhausted.get(site, 0) + 1

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        return {
            "attempts": dict(self.attempts),
            "retries": dict(self.retries),
            "exhausted": dict(self.exhausted),
        }


def run_with_retry(
    fn: Callable[[int], object],
    *,
    policy: RetryPolicy,
    site: str,
    retry_on: Tuple[type, ...] = (Exception,),
    counters: Optional[RetryCounters] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_failure: Optional[Callable[[int, BaseException], None]] = None,
):
    """Call ``fn(attempt)`` until it succeeds or the budget is spent.

    Exceptions in ``retry_on`` trigger a backoff + retry (``on_failure``
    runs between attempt and sleep — the supervisor uses it to respawn a
    dead worker); the final failure re-raises after the counters record
    the exhaustion.
    """
    last: Optional[BaseException] = None
    for attempt in range(policy.attempts):
        if counters is not None:
            counters.note_attempt(site)
        try:
            return fn(attempt)
        except retry_on as exc:  # noqa: PERF203 - retry loop by design
            last = exc
            if on_failure is not None:
                on_failure(attempt, exc)
            if attempt + 1 < policy.attempts:
                if counters is not None:
                    counters.note_retry(site)
                sleep(policy.delay_s(site, attempt))
    if counters is not None:
        counters.note_exhausted(site)
    assert last is not None
    raise last
