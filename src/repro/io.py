"""Serialization of uncertain relations.

Uncertain points are rows of a probabilistic database table; this module
round-trips every distribution model through plain JSON so data sets,
workloads, and experiment inputs can be stored and shared.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .errors import DistributionError
from .uncertain.base import UncertainPoint
from .uncertain.discrete import DiscreteUncertainPoint
from .uncertain.disk_uniform import UniformDiskPoint
from .uncertain.gaussian import TruncatedGaussianPoint
from .uncertain.histogram import HistogramPoint
from .uncertain.polygon_uniform import UniformPolygonPoint
from .uncertain.rect_uniform import UniformRectPoint


def point_to_dict(point: UncertainPoint) -> Dict:
    """Encode one uncertain point as a JSON-compatible dict."""
    if isinstance(point, UniformDiskPoint):
        c = point.disk.center
        return {
            "type": "disk_uniform",
            "center": [c.x, c.y],
            "radius": point.disk.radius,
            "name": point.name,
        }
    if isinstance(point, DiscreteUncertainPoint):
        return {
            "type": "discrete",
            "locations": [list(l) for l in point.locations],
            "weights": list(point.weights),
            "name": point.name,
        }
    if isinstance(point, TruncatedGaussianPoint):
        c = point.disk.center
        return {
            "type": "truncated_gaussian",
            "center": [c.x, c.y],
            "sigma": point.sigma,
            "cutoff": point.cutoff,
            "name": point.name,
        }
    if isinstance(point, HistogramPoint):
        return {
            "type": "histogram",
            "origin": list(point.origin),
            "cell": point.cell,
            "weights": point.grid_weights,
            "name": point.name,
        }
    if isinstance(point, UniformPolygonPoint):
        return {
            "type": "polygon_uniform",
            "vertices": [[v.x, v.y] for v in point.vertices],
            "name": point.name,
        }
    if isinstance(point, UniformRectPoint):
        return {"type": "rect_uniform", "rect": list(point.rect), "name": point.name}
    raise DistributionError(f"cannot serialise {type(point).__name__}")


def point_from_dict(data: Dict) -> UncertainPoint:
    """Decode one uncertain point from its dict encoding."""
    kind = data.get("type")
    name = data.get("name")
    if kind == "disk_uniform":
        return UniformDiskPoint(data["center"], data["radius"], name=name)
    if kind == "discrete":
        return DiscreteUncertainPoint(
            [tuple(l) for l in data["locations"]], data["weights"], name=name
        )
    if kind == "truncated_gaussian":
        return TruncatedGaussianPoint(
            data["center"], data["sigma"], cutoff=data.get("cutoff"), name=name
        )
    if kind == "histogram":
        return HistogramPoint(
            data["origin"], data["cell"], data["weights"], name=name
        )
    if kind == "polygon_uniform":
        return UniformPolygonPoint(
            [tuple(v) for v in data["vertices"]], name=name
        )
    if kind == "rect_uniform":
        return UniformRectPoint(tuple(data["rect"]), name=name)
    raise DistributionError(f"unknown uncertain point type {kind!r}")


def dumps(points: Sequence[UncertainPoint], **json_kwargs) -> str:
    """Encode a whole uncertain relation as a JSON string."""
    return json.dumps([point_to_dict(p) for p in points], **json_kwargs)


def loads(text: str) -> List[UncertainPoint]:
    """Decode an uncertain relation from a JSON string."""
    return [point_from_dict(d) for d in json.loads(text)]


def save(points: Sequence[UncertainPoint], path: str) -> None:
    """Write an uncertain relation to a JSON file."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps(points, indent=1))


def load(path: str) -> List[UncertainPoint]:
    """Read an uncertain relation from a JSON file."""
    with open(path, "r", encoding="utf-8") as f:
        return loads(f.read())
