"""Serialization of uncertain relations.

Uncertain points are rows of a probabilistic database table; this module
round-trips every distribution model through plain JSON so data sets,
workloads, and experiment inputs can be stored and shared.
"""

from __future__ import annotations

import base64
import json
from typing import Dict, List, Sequence, Union

import numpy as np

from .errors import DistributionError
from .uncertain.base import UncertainPoint
from .uncertain.discrete import DiscreteUncertainPoint
from .uncertain.disk_uniform import UniformDiskPoint
from .uncertain.gaussian import TruncatedGaussianPoint
from .uncertain.histogram import HistogramPoint
from .uncertain.polygon_uniform import UniformPolygonPoint
from .uncertain.rect_uniform import UniformRectPoint


def point_to_dict(point: UncertainPoint) -> Dict:
    """Encode one uncertain point as a JSON-compatible dict."""
    if isinstance(point, UniformDiskPoint):
        c = point.disk.center
        return {
            "type": "disk_uniform",
            "center": [c.x, c.y],
            "radius": point.disk.radius,
            "name": point.name,
        }
    if isinstance(point, DiscreteUncertainPoint):
        return {
            "type": "discrete",
            "locations": [list(l) for l in point.locations],
            "weights": list(point.weights),
            "name": point.name,
        }
    if isinstance(point, TruncatedGaussianPoint):
        c = point.disk.center
        return {
            "type": "truncated_gaussian",
            "center": [c.x, c.y],
            "sigma": point.sigma,
            "cutoff": point.cutoff,
            "name": point.name,
        }
    if isinstance(point, HistogramPoint):
        return {
            "type": "histogram",
            "origin": list(point.origin),
            "cell": point.cell,
            "weights": point.grid_weights,
            "name": point.name,
        }
    if isinstance(point, UniformPolygonPoint):
        return {
            "type": "polygon_uniform",
            "vertices": [[v.x, v.y] for v in point.vertices],
            "name": point.name,
        }
    if isinstance(point, UniformRectPoint):
        return {"type": "rect_uniform", "rect": list(point.rect), "name": point.name}
    raise DistributionError(f"cannot serialise {type(point).__name__}")


def _where(row) -> str:
    return f" (row {row})" if row is not None else ""


def _field(data: Dict, key: str, kind: str, row=None):
    """Fetch a required decoder field, or raise a DistributionError that
    names the missing field and the offending row."""
    try:
        return data[key]
    except KeyError:
        raise DistributionError(
            f"{kind} encoding is missing required field {key!r}{_where(row)}"
        ) from None


def point_from_dict(data: Dict, row=None) -> UncertainPoint:
    """Decode one uncertain point from its dict encoding.

    Malformed encodings (unknown ``type``, missing keys, bad shapes or
    values) raise :class:`DistributionError` naming the offending field
    and, when ``row`` is given, the row index in the relation — they
    never escape as bare ``KeyError`` / ``ValueError`` / ``TypeError``.
    """
    if not isinstance(data, dict):
        raise DistributionError(
            f"expected a point encoding object, got "
            f"{type(data).__name__}{_where(row)}"
        )
    kind = data.get("type")
    name = data.get("name")
    try:
        if kind == "disk_uniform":
            return UniformDiskPoint(
                _field(data, "center", kind, row),
                _field(data, "radius", kind, row),
                name=name,
            )
        if kind == "discrete":
            return DiscreteUncertainPoint(
                [tuple(l) for l in _field(data, "locations", kind, row)],
                _field(data, "weights", kind, row),
                name=name,
            )
        if kind == "truncated_gaussian":
            return TruncatedGaussianPoint(
                _field(data, "center", kind, row),
                _field(data, "sigma", kind, row),
                cutoff=data.get("cutoff"),
                name=name,
            )
        if kind == "histogram":
            return HistogramPoint(
                _field(data, "origin", kind, row),
                _field(data, "cell", kind, row),
                _field(data, "weights", kind, row),
                name=name,
            )
        if kind == "polygon_uniform":
            return UniformPolygonPoint(
                [tuple(v) for v in _field(data, "vertices", kind, row)],
                name=name,
            )
        if kind == "rect_uniform":
            return UniformRectPoint(
                tuple(_field(data, "rect", kind, row)), name=name
            )
    except DistributionError as exc:
        if row is not None and "(row" not in str(exc):
            raise DistributionError(f"{exc}{_where(row)}") from exc
        raise
    except (KeyError, ValueError, TypeError, IndexError) as exc:
        raise DistributionError(
            f"malformed {kind!r} encoding{_where(row)}: {exc}"
        ) from exc
    raise DistributionError(
        f"unknown uncertain point type {kind!r}{_where(row)}"
    )


def _pack_f64(arr) -> str:
    """Base64 of little-endian float64 bytes — exact, and an order of
    magnitude faster than ``repr``-based JSON float encoding."""
    return base64.b64encode(
        np.ascontiguousarray(arr, dtype="<f8").tobytes()
    ).decode("ascii")


def _unpack_f64(text: str, n: int, kind: str):
    data = base64.b64decode(text.encode("ascii"), validate=True)
    arr = np.frombuffer(data, dtype="<f8")
    if arr.size != n:
        raise DistributionError(
            f"packed {kind} encoding holds {arr.size} values, "
            f"expected {n}"
        )
    return arr


def points_to_wire(
    points: Sequence[UncertainPoint],
) -> Union[List[Dict], Dict]:
    """Encode a point batch for the write-ahead log / wire.

    Homogeneous batches of the hot ingest types are packed as base64
    float64 columns — the per-float cost of JSON ``repr`` encoding is
    what would otherwise dominate a durable ``Engine.insert``.  Any
    other batch falls back to the per-point dict encoding of
    :func:`point_to_dict`.  Either form round-trips exactly through
    :func:`points_from_wire`.
    """
    pts = list(points)
    if pts and all(type(p) is DiscreteUncertainPoint for p in pts):
        counts = [len(p.weights) for p in pts]
        xy = np.asarray(
            [loc for p in pts for loc in p.locations], dtype=np.float64
        )
        if xy.shape == (sum(counts), 2):
            return {
                "pack": "discrete",
                "counts": counts,
                "names": [p.name for p in pts],
                "xy": _pack_f64(xy),
                "weights": _pack_f64(
                    [w for p in pts for w in p.weights]
                ),
            }
    if pts and all(type(p) is UniformDiskPoint for p in pts):
        return {
            "pack": "disk_uniform",
            "names": [p.name for p in pts],
            "xyr": _pack_f64(
                [
                    (p.disk.center.x, p.disk.center.y, p.disk.radius)
                    for p in pts
                ]
            ),
        }
    return [point_to_dict(p) for p in pts]


def points_from_wire(obj) -> List[UncertainPoint]:
    """Decode a batch written by :func:`points_to_wire`."""
    if isinstance(obj, dict):
        pack = obj.get("pack")
        try:
            if pack == "discrete":
                counts = [int(c) for c in obj["counts"]]
                names = obj["names"]
                total = sum(counts)
                xy = _unpack_f64(obj["xy"], 2 * total, pack).reshape(
                    total, 2
                )
                weights = _unpack_f64(obj["weights"], total, pack)
                out, at = [], 0
                for k, name in zip(counts, names):
                    out.append(
                        DiscreteUncertainPoint(
                            [tuple(l) for l in xy[at:at + k].tolist()],
                            weights[at:at + k].tolist(),
                            name=name,
                        )
                    )
                    at += k
                if len(out) != len(counts) or len(names) != len(counts):
                    raise DistributionError(
                        "packed discrete encoding has mismatched "
                        "counts/names"
                    )
                return out
            if pack == "disk_uniform":
                names = obj["names"]
                xyr = _unpack_f64(
                    obj["xyr"], 3 * len(names), pack
                ).reshape(len(names), 3)
                return [
                    UniformDiskPoint((row[0], row[1]), row[2], name=name)
                    for row, name in zip(xyr.tolist(), names)
                ]
        except DistributionError:
            raise
        except (KeyError, ValueError, TypeError) as exc:
            raise DistributionError(
                f"malformed packed {pack!r} encoding: {exc}"
            ) from exc
        raise DistributionError(
            f"unknown packed point encoding {pack!r}"
        )
    if not isinstance(obj, list):
        raise DistributionError(
            f"point batch encoding must be a list or a packed object, "
            f"got {type(obj).__name__}"
        )
    return [point_from_dict(d, row=i) for i, d in enumerate(obj)]


def dumps(points: Sequence[UncertainPoint], **json_kwargs) -> str:
    """Encode a whole uncertain relation as a JSON string."""
    return json.dumps([point_to_dict(p) for p in points], **json_kwargs)


def loads(text: str) -> List[UncertainPoint]:
    """Decode an uncertain relation from a JSON string."""
    try:
        rows = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DistributionError(f"relation is not valid JSON: {exc}") from exc
    if not isinstance(rows, list):
        raise DistributionError(
            f"relation encoding must be a JSON array of point objects, "
            f"got {type(rows).__name__}"
        )
    return [point_from_dict(d, row=i) for i, d in enumerate(rows)]


def save(points: Sequence[UncertainPoint], path: str) -> None:
    """Write an uncertain relation to a JSON file."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps(points, indent=1))


def load(path: str) -> List[UncertainPoint]:
    """Read an uncertain relation from a JSON file."""
    with open(path, "r", encoding="utf-8") as f:
        return loads(f.read())


def json_safe(value):
    """Recursively convert ``value`` into plain JSON-serializable types.

    NumPy scalars become native ``int`` / ``float`` / ``bool``, arrays
    become (nested) lists, tuples/sets become lists, and mapping keys
    that are NumPy integers become ``int``.  Telemetry surfaces
    (``Engine.stats()``, ``ShardedEngine.stats()``, service ``/stats``)
    run through this so ``json.dumps`` always succeeds on them.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, dict):
        return {
            int(k) if isinstance(k, np.integer) else k: json_safe(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    return value
