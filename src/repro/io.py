"""Serialization of uncertain relations.

Uncertain points are rows of a probabilistic database table; this module
round-trips every distribution model through plain JSON so data sets,
workloads, and experiment inputs can be stored and shared.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

import numpy as np

from .errors import DistributionError
from .uncertain.base import UncertainPoint
from .uncertain.discrete import DiscreteUncertainPoint
from .uncertain.disk_uniform import UniformDiskPoint
from .uncertain.gaussian import TruncatedGaussianPoint
from .uncertain.histogram import HistogramPoint
from .uncertain.polygon_uniform import UniformPolygonPoint
from .uncertain.rect_uniform import UniformRectPoint


def point_to_dict(point: UncertainPoint) -> Dict:
    """Encode one uncertain point as a JSON-compatible dict."""
    if isinstance(point, UniformDiskPoint):
        c = point.disk.center
        return {
            "type": "disk_uniform",
            "center": [c.x, c.y],
            "radius": point.disk.radius,
            "name": point.name,
        }
    if isinstance(point, DiscreteUncertainPoint):
        return {
            "type": "discrete",
            "locations": [list(l) for l in point.locations],
            "weights": list(point.weights),
            "name": point.name,
        }
    if isinstance(point, TruncatedGaussianPoint):
        c = point.disk.center
        return {
            "type": "truncated_gaussian",
            "center": [c.x, c.y],
            "sigma": point.sigma,
            "cutoff": point.cutoff,
            "name": point.name,
        }
    if isinstance(point, HistogramPoint):
        return {
            "type": "histogram",
            "origin": list(point.origin),
            "cell": point.cell,
            "weights": point.grid_weights,
            "name": point.name,
        }
    if isinstance(point, UniformPolygonPoint):
        return {
            "type": "polygon_uniform",
            "vertices": [[v.x, v.y] for v in point.vertices],
            "name": point.name,
        }
    if isinstance(point, UniformRectPoint):
        return {"type": "rect_uniform", "rect": list(point.rect), "name": point.name}
    raise DistributionError(f"cannot serialise {type(point).__name__}")


def _where(row) -> str:
    return f" (row {row})" if row is not None else ""


def _field(data: Dict, key: str, kind: str, row=None):
    """Fetch a required decoder field, or raise a DistributionError that
    names the missing field and the offending row."""
    try:
        return data[key]
    except KeyError:
        raise DistributionError(
            f"{kind} encoding is missing required field {key!r}{_where(row)}"
        ) from None


def point_from_dict(data: Dict, row=None) -> UncertainPoint:
    """Decode one uncertain point from its dict encoding.

    Malformed encodings (unknown ``type``, missing keys, bad shapes or
    values) raise :class:`DistributionError` naming the offending field
    and, when ``row`` is given, the row index in the relation — they
    never escape as bare ``KeyError`` / ``ValueError`` / ``TypeError``.
    """
    if not isinstance(data, dict):
        raise DistributionError(
            f"expected a point encoding object, got "
            f"{type(data).__name__}{_where(row)}"
        )
    kind = data.get("type")
    name = data.get("name")
    try:
        if kind == "disk_uniform":
            return UniformDiskPoint(
                _field(data, "center", kind, row),
                _field(data, "radius", kind, row),
                name=name,
            )
        if kind == "discrete":
            return DiscreteUncertainPoint(
                [tuple(l) for l in _field(data, "locations", kind, row)],
                _field(data, "weights", kind, row),
                name=name,
            )
        if kind == "truncated_gaussian":
            return TruncatedGaussianPoint(
                _field(data, "center", kind, row),
                _field(data, "sigma", kind, row),
                cutoff=data.get("cutoff"),
                name=name,
            )
        if kind == "histogram":
            return HistogramPoint(
                _field(data, "origin", kind, row),
                _field(data, "cell", kind, row),
                _field(data, "weights", kind, row),
                name=name,
            )
        if kind == "polygon_uniform":
            return UniformPolygonPoint(
                [tuple(v) for v in _field(data, "vertices", kind, row)],
                name=name,
            )
        if kind == "rect_uniform":
            return UniformRectPoint(
                tuple(_field(data, "rect", kind, row)), name=name
            )
    except DistributionError as exc:
        if row is not None and "(row" not in str(exc):
            raise DistributionError(f"{exc}{_where(row)}") from exc
        raise
    except (KeyError, ValueError, TypeError, IndexError) as exc:
        raise DistributionError(
            f"malformed {kind!r} encoding{_where(row)}: {exc}"
        ) from exc
    raise DistributionError(
        f"unknown uncertain point type {kind!r}{_where(row)}"
    )


def dumps(points: Sequence[UncertainPoint], **json_kwargs) -> str:
    """Encode a whole uncertain relation as a JSON string."""
    return json.dumps([point_to_dict(p) for p in points], **json_kwargs)


def loads(text: str) -> List[UncertainPoint]:
    """Decode an uncertain relation from a JSON string."""
    try:
        rows = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DistributionError(f"relation is not valid JSON: {exc}") from exc
    if not isinstance(rows, list):
        raise DistributionError(
            f"relation encoding must be a JSON array of point objects, "
            f"got {type(rows).__name__}"
        )
    return [point_from_dict(d, row=i) for i, d in enumerate(rows)]


def save(points: Sequence[UncertainPoint], path: str) -> None:
    """Write an uncertain relation to a JSON file."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(dumps(points, indent=1))


def load(path: str) -> List[UncertainPoint]:
    """Read an uncertain relation from a JSON file."""
    with open(path, "r", encoding="utf-8") as f:
        return loads(f.read())


def json_safe(value):
    """Recursively convert ``value`` into plain JSON-serializable types.

    NumPy scalars become native ``int`` / ``float`` / ``bool``, arrays
    become (nested) lists, tuples/sets become lists, and mapping keys
    that are NumPy integers become ``int``.  Telemetry surfaces
    (``Engine.stats()``, ``ShardedEngine.stats()``, service ``/stats``)
    run through this so ``json.dumps`` always succeeds on them.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, dict):
        return {
            int(k) if isinstance(k, np.integer) else k: json_safe(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    return value
