"""Global numeric configuration for the library.

The paper assumes a real-RAM model; this implementation works with IEEE
doubles plus bracketed root isolation.  All tolerance knobs live here so
that experiments can tighten or relax them in one place, and the random
sources used by Monte-Carlo instantiation (Section 4.2) and the batch
kernels are normalised here to a single :class:`numpy.random.Generator`
convention.
"""

from __future__ import annotations

import contextlib
import dataclasses
import random
from typing import Iterator, Optional, Union

import numpy as np


@dataclasses.dataclass
class Tolerances:
    """Numeric tolerances used across the geometry substrate.

    Attributes
    ----------
    abs_eps:
        Absolute tolerance for coordinate comparisons and vertex snapping.
    rel_eps:
        Relative tolerance for distance comparisons.
    root_eps:
        Convergence tolerance for 1-D root isolation (envelope breakpoints,
        curve/curve intersections).
    angle_samples:
        Default number of angular samples used to bracket sign changes when
        intersecting polar curves.  Each pair of Apollonius branches crosses
        at most twice (Lemma 2.2), so a moderately fine grid suffices; the
        value is configurable for stress experiments.
    """

    abs_eps: float = 1e-9
    rel_eps: float = 1e-9
    root_eps: float = 1e-12
    angle_samples: int = 512


#: Module-level default tolerances.  Kept for back-compat: modules bind the
#: object itself (``from ..config import TOLERANCES``), so adjustments must
#: mutate its fields in place — prefer the :func:`tolerances` context
#: manager, which does exactly that and restores the previous values.
TOLERANCES = Tolerances()


@contextlib.contextmanager
def tolerances(**overrides: Union[float, int]) -> Iterator[Tolerances]:
    """Temporarily override fields of the global :data:`TOLERANCES`.

    Usage::

        with config.tolerances(abs_eps=1e-6, angle_samples=2048):
            ...  # code under relaxed/stressed tolerances

    The overrides are applied by in-place mutation (so modules that
    imported the ``TOLERANCES`` object see them) and restored on exit,
    even on exception.  Yields the live :class:`Tolerances` object.
    """
    valid = {f.name for f in dataclasses.fields(Tolerances)}
    unknown = set(overrides) - valid
    if unknown:
        raise TypeError(f"unknown tolerance fields: {sorted(unknown)}")
    saved = {name: getattr(TOLERANCES, name) for name in overrides}
    try:
        for name, value in overrides.items():
            setattr(TOLERANCES, name, value)
        yield TOLERANCES
    finally:
        for name, value in saved.items():
            setattr(TOLERANCES, name, value)


def almost_equal(a: float, b: float, tol: Tolerances = None) -> bool:
    """Return True when ``a`` and ``b`` agree up to the configured tolerance."""
    tol = tol or TOLERANCES
    return abs(a - b) <= tol.abs_eps + tol.rel_eps * max(abs(a), abs(b))


# -- execution (tiling / parallelism) ----------------------------------------


@dataclasses.dataclass
class Execution:
    """Knobs for the tiled, optionally parallel batch execution engine.

    Attributes
    ----------
    tile_bytes:
        Target byte budget for the per-tile floating-point working set of
        the planner's bound pass.  A batch of ``m`` queries over ``n``
        objects is processed in row tiles sized so the simultaneous
        ``(rows, n)`` float64 temporaries stay within this budget —
        peak memory is O(tile), never O(m * n).  The default (16 MiB)
        bounds the working set to an L3-cache-sized slice while keeping
        tiles wide enough to amortize per-object dispatch; shrink it to
        cap memory harder on huge batches.
    parallel_backend:
        ``"serial"`` (default), ``"thread"``, or ``"process"`` — how
        query tiles are fanned out by :func:`repro.core.parallel.map_tiles`.
        Results are always assembled in tile order, so every backend
        returns identical answers.  The planner accepts ``"thread"``
        only (its tile closures hold model objects and cannot be
        pickled); ``"process"`` serves picklable workloads driven
        through ``map_tiles`` directly.
    parallel_workers:
        Worker count for the parallel backends (``None`` = CPU count).
    evaluator:
        ``"grouped"`` (default) or ``"object"`` — how the planner
        evaluates post-prune survivors.  ``"grouped"`` flattens each
        batch's survivor CSR into (query, object) pairs, partitions
        them by model tag, and issues one vectorized kernel call per
        model family present; ``"object"`` keeps the per-object
        dispatch loop.  Both replay the same float operation sequence,
        so answers are bit-identical; ``"object"`` exists as the
        reference path for parity tests and baseline benchmarks.
    dtype:
        ``"float64"`` (default) or ``"float32"``.  In float32 mode the
        grouped expected-distance kernels used to resolve the approx
        tier's fallback rows run in single precision, and a certified
        per-row error bound is folded into the reported certificate
        (instead of the exact tier's 0).  The exact and pruned tiers
        always stay float64 and bit-identical.
    backend:
        ``"numpy"`` (default) or ``"numba"`` — kernel backend for the
        lens-area and disk tail-quadrature kernels.  ``"numba"`` takes
        effect only when numba is importable (otherwise the NumPy path
        runs unchanged); the NumPy path is the bit-exact reference.
    memory_budget_bytes:
        Optional admission-control budget (``None`` = unlimited).  When
        set, the planner's allocation estimator auto-tiles tile-sized
        working sets down to the budget and rejects requests whose
        unavoidable dense outputs (distance matrices, Monte-Carlo count
        matrices, sample blocks) would exceed it, raising
        :class:`repro.errors.ResourceLimitError` instead of OOM-ing.
    max_workers:
        Optional hard cap applied on top of ``parallel_workers`` by
        :func:`repro.core.parallel.resolve_workers` (``None`` = no cap).
        Lets an operator bound fan-out globally regardless of what a
        caller requests.
    """

    tile_bytes: int = 16 * 1024 * 1024
    parallel_backend: str = "serial"
    parallel_workers: Optional[int] = None
    evaluator: str = "grouped"
    dtype: str = "float64"
    backend: str = "numpy"
    memory_budget_bytes: Optional[int] = None
    max_workers: Optional[int] = None


#: Module-level default execution settings.  Like :data:`TOLERANCES`,
#: modules bind the object itself, so overrides mutate it in place —
#: prefer the :func:`execution` context manager.
EXECUTION = Execution()


@contextlib.contextmanager
def execution(**overrides: Union[int, str, None]) -> Iterator[Execution]:
    """Temporarily override fields of the global :data:`EXECUTION`.

    Usage::

        with config.execution(tile_bytes=1 << 20, parallel_backend="thread"):
            ...  # code under a small-tile, threaded execution regime

    Mirrors :func:`tolerances`: in-place mutation, restored on exit.
    """
    valid = {f.name for f in dataclasses.fields(Execution)}
    unknown = set(overrides) - valid
    if unknown:
        raise TypeError(f"unknown execution fields: {sorted(unknown)}")
    saved = {name: getattr(EXECUTION, name) for name in overrides}
    try:
        for name, value in overrides.items():
            setattr(EXECUTION, name, value)
        yield EXECUTION
    finally:
        for name, value in saved.items():
            setattr(EXECUTION, name, value)


# -- cluster (sharded multi-process engine) ----------------------------------


@dataclasses.dataclass
class Cluster:
    """Knobs for the supervised sharded engine (:mod:`repro.cluster`).

    Attributes
    ----------
    shards:
        Default shard count for :class:`repro.ShardedEngine` when the
        constructor does not name one.
    heartbeat_interval_s:
        How often an idle shard worker stamps its heartbeat slot (and
        fires the ``cluster.heartbeat`` checkpoint).
    liveness_timeout_s:
        A worker whose heartbeat is staler than this (while idle) is
        declared dead and respawned by the supervisor.
    shard_timeout_s:
        Per-attempt budget for one shard's answer to one query request;
        expiry counts as a failure against the retry budget.
    retry_attempts / retry_base_delay_s / retry_backoff / retry_jitter /
    retry_seed:
        The :class:`repro.resilience.retry.RetryPolicy` the supervisor
        applies to failed shard requests.  Jitter is *seeded* — delays
        are a deterministic function of (seed, site, attempt) — so
        failover runs reproduce exactly.
    snapshot_fallback:
        When True the supervisor writes one PR 7 snapshot per shard at
        construction; a respawn whose shared-memory segment has
        vanished restores the shard from its snapshot instead of
        re-summarising the model objects.
    """

    shards: int = 2
    heartbeat_interval_s: float = 0.2
    liveness_timeout_s: float = 5.0
    shard_timeout_s: float = 30.0
    retry_attempts: int = 3
    retry_base_delay_s: float = 0.05
    retry_backoff: float = 2.0
    retry_jitter: float = 0.25
    retry_seed: int = 0
    snapshot_fallback: bool = True


#: Module-level default cluster settings; mutate via :func:`cluster`.
CLUSTER = Cluster()


@contextlib.contextmanager
def cluster(**overrides: Union[int, float, bool, None]) -> Iterator[Cluster]:
    """Temporarily override fields of the global :data:`CLUSTER`.

    Mirrors :func:`execution`: in-place mutation, restored on exit.
    """
    valid = {f.name for f in dataclasses.fields(Cluster)}
    unknown = set(overrides) - valid
    if unknown:
        raise TypeError(f"unknown cluster fields: {sorted(unknown)}")
    saved = {name: getattr(CLUSTER, name) for name in overrides}
    try:
        for name, value in overrides.items():
            setattr(CLUSTER, name, value)
        yield CLUSTER
    finally:
        for name, value in saved.items():
            setattr(CLUSTER, name, value)


# -- durability (write-ahead logging) -----------------------------------------


@dataclasses.dataclass
class Durability:
    """Knobs for the crash-consistent write-ahead log
    (:mod:`repro.resilience.wal`).

    Attributes
    ----------
    fsync:
        When appended records reach stable storage, i.e. what an
        acknowledged mutation means:

        * ``"always"`` — every append fsyncs before returning; an ack
          survives power loss.
        * ``"interval"`` — appends fsync at most every
          ``fsync_interval_s`` seconds; an ack survives process death
          (``kill -9``) immediately, power loss only after the next
          sync.  The write is always flushed to the OS page cache
          before the ack either way.
        * ``"off"`` — the kernel decides when to write back; an ack
          survives process death, power loss at the OS's leisure.
    fsync_interval_s:
        Maximum staleness of the log under ``fsync="interval"``.
    compact_bytes / compact_records:
        Log-compaction triggers: when the live log grows past either
        bound, the owning engine snapshots itself and truncates the
        log (a crash-safe snapshot-then-rotate; see
        :meth:`repro.Engine.compact`).
    """

    fsync: str = "always"
    fsync_interval_s: float = 0.05
    compact_bytes: int = 64 * 1024 * 1024
    compact_records: int = 100_000


#: Module-level default durability settings; mutate via :func:`durability`.
DURABILITY = Durability()


@contextlib.contextmanager
def durability(**overrides: Union[int, float, str]) -> Iterator[Durability]:
    """Temporarily override fields of the global :data:`DURABILITY`.

    Mirrors :func:`execution`: in-place mutation, restored on exit.
    """
    valid = {f.name for f in dataclasses.fields(Durability)}
    unknown = set(overrides) - valid
    if unknown:
        raise TypeError(f"unknown durability fields: {sorted(unknown)}")
    fsync = overrides.get("fsync")
    if fsync is not None and fsync not in ("always", "interval", "off"):
        raise TypeError(
            f"fsync must be 'always', 'interval', or 'off', got {fsync!r}"
        )
    saved = {name: getattr(DURABILITY, name) for name in overrides}
    try:
        for name, value in overrides.items():
            setattr(DURABILITY, name, value)
        yield DURABILITY
    finally:
        for name, value in saved.items():
            setattr(DURABILITY, name, value)


# -- service (multi-tenant query daemon) --------------------------------------


@dataclasses.dataclass
class Service:
    """Knobs for the multi-tenant query daemon (:mod:`repro.service`).

    Attributes
    ----------
    queue_depth:
        Maximum number of requests the coalescing queue may hold;
        submission beyond it is rejected with
        :class:`repro.errors.QueueFullError` (HTTP 429) instead of
        growing an unbounded backlog.
    coalesce:
        Whether the queue merges compatible concurrent requests into
        one planner batch (split back per request afterwards; answers
        stay bit-identical to serial execution).
    max_batch_requests / max_batch_rows:
        Caps on one coalesced batch: how many requests may merge and
        how many total query rows the merged matrix may hold.
    queue_workers:
        Dispatcher threads draining the queue.  The default (1) keeps
        every engine strictly serial; raise it only for many-tenant
        deployments where requests carry no per-spec execution
        overrides (those mutate the process-wide ``EXECUTION`` knobs).
    request_timeout_s:
        Server-side cap on one request's total queue-wait + execution
        time; expiry answers HTTP 504.
    drain_timeout_s:
        How long a shutting-down daemon waits for queued requests to
        finish before stopping the workers anyway.
    default_deadline_s:
        Optional execution deadline applied to requests whose spec does
        not set one (``None`` = no implicit deadline).
    max_body_bytes:
        Largest request body the HTTP front end accepts; a larger
        Content-Length is rejected with
        :class:`repro.errors.PayloadTooLargeError` (HTTP 413) before
        any of the body is read into memory.  ``0`` disables the bound.
    retry_after_s:
        The ``Retry-After`` hint attached to 429 (queue full)
        responses; 503 (draining) responses advertise
        ``drain_timeout_s`` instead, the time by which the backlog is
        gone either way.
    """

    queue_depth: int = 256
    coalesce: bool = True
    max_batch_requests: int = 64
    max_batch_rows: int = 4096
    queue_workers: int = 1
    request_timeout_s: float = 30.0
    drain_timeout_s: float = 10.0
    default_deadline_s: Optional[float] = None
    max_body_bytes: int = 64 * 1024 * 1024
    retry_after_s: float = 1.0


#: Module-level default service settings; mutate via :func:`service`.
SERVICE = Service()


@contextlib.contextmanager
def service(**overrides: Union[int, float, bool, None]) -> Iterator[Service]:
    """Temporarily override fields of the global :data:`SERVICE`.

    Mirrors :func:`execution`: in-place mutation, restored on exit.
    """
    valid = {f.name for f in dataclasses.fields(Service)}
    unknown = set(overrides) - valid
    if unknown:
        raise TypeError(f"unknown service fields: {sorted(unknown)}")
    saved = {name: getattr(SERVICE, name) for name in overrides}
    try:
        for name, value in overrides.items():
            setattr(SERVICE, name, value)
        yield SERVICE
    finally:
        for name, value in saved.items():
            setattr(SERVICE, name, value)


# -- random sources ----------------------------------------------------------

SeedLike = Union[None, int, np.random.Generator, random.Random]


def default_rng(seed: SeedLike = None) -> np.random.Generator:
    """Normalise any seed-like value to a :class:`numpy.random.Generator`.

    The single entry point for randomness in the batch engine:

    * ``None`` or an ``int`` — a fresh ``numpy.random.default_rng(seed)``;
    * a ``numpy.random.Generator`` — returned unchanged;
    * a ``random.Random`` — a Generator seeded from its stream (the two
      then advance independently).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, random.Random):
        return np.random.default_rng(seed.getrandbits(64))
    return np.random.default_rng(seed)


class _GeneratorAdapter:
    """Expose the ``random.Random`` surface the scalar samplers use
    (``random`` / ``uniform`` / ``gauss``) on top of a numpy Generator,
    so scalar ``sample()`` implementations accept either source."""

    __slots__ = ("_g",)

    def __init__(self, generator: np.random.Generator):
        self._g = generator

    def random(self) -> float:
        return float(self._g.random())

    def uniform(self, a: float, b: float) -> float:
        return float(self._g.uniform(a, b))

    def gauss(self, mu: float, sigma: float) -> float:
        return float(self._g.normal(mu, sigma))


def scalar_rng(rng: SeedLike) -> Union[random.Random, _GeneratorAdapter]:
    """A ``random.Random``-compatible view of any seed-like value.

    ``random.Random`` instances pass through (preserving legacy streams);
    Generators are wrapped without reseeding, so scalar and batch draws
    taken alternately from the same Generator stay one stream.
    """
    if isinstance(rng, random.Random):
        return rng
    return _GeneratorAdapter(default_rng(rng))
