"""Global numeric configuration for the library.

The paper assumes a real-RAM model; this implementation works with IEEE
doubles plus bracketed root isolation.  All tolerance knobs live here so
that experiments can tighten or relax them in one place.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class Tolerances:
    """Numeric tolerances used across the geometry substrate.

    Attributes
    ----------
    abs_eps:
        Absolute tolerance for coordinate comparisons and vertex snapping.
    rel_eps:
        Relative tolerance for distance comparisons.
    root_eps:
        Convergence tolerance for 1-D root isolation (envelope breakpoints,
        curve/curve intersections).
    angle_samples:
        Default number of angular samples used to bracket sign changes when
        intersecting polar curves.  Each pair of Apollonius branches crosses
        at most twice (Lemma 2.2), so a moderately fine grid suffices; the
        value is configurable for stress experiments.
    """

    abs_eps: float = 1e-9
    rel_eps: float = 1e-9
    root_eps: float = 1e-12
    angle_samples: int = 512


#: Module-level default tolerances.  Mutated only by tests/experiments.
TOLERANCES = Tolerances()


def almost_equal(a: float, b: float, tol: Tolerances = None) -> bool:
    """Return True when ``a`` and ``b`` agree up to the configured tolerance."""
    tol = tol or TOLERANCES
    return abs(a - b) <= tol.abs_eps + tol.rel_eps * max(abs(a), abs(b))
