"""Uniform hashing grid over points.

A simple comparison index: bucket points by cell, answer disk-range
reports by scanning the cells overlapped by the query disk.  Used as a
baseline against the kd-tree in the stage-2 benchmarks and as a helper in
construction code.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EmptyIndexError
from ..geometry import kernels


class GridIndex:
    """Fixed-resolution bucket grid over a static point set."""

    def __init__(self, points: Sequence, cell: Optional[float] = None):
        self.points: List[Tuple[float, float]] = [
            (float(p[0]), float(p[1])) for p in points
        ]
        if not self.points:
            raise EmptyIndexError("GridIndex over empty point set")
        if cell is None:
            xs = [p[0] for p in self.points]
            ys = [p[1] for p in self.points]
            area = max(max(xs) - min(xs), 1e-9) * max(max(ys) - min(ys), 1e-9)
            cell = math.sqrt(area / len(self.points)) or 1.0
        self.cell = float(cell)
        self._buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for i, (x, y) in enumerate(self.points):
            self._buckets[self._key(x, y)].append(i)
        self._pts_arr = np.asarray(self.points, dtype=np.float64)

    def _key(self, x: float, y: float) -> Tuple[int, int]:
        return (int(math.floor(x / self.cell)), int(math.floor(y / self.cell)))

    # -- batch queries ------------------------------------------------------
    def query_many(
        self, qs, chunk: int = 512
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched nearest neighbors: ``(indices, distances)``, each ``(m,)``.

        The batch probe is a chunked dense distance scan rather than the
        scalar ring-growing walk: for the static point sets this baseline
        index serves, one vectorized ``(chunk, n)`` matrix beats ``m``
        Python-level bucket traversals by orders of magnitude.
        """
        Q = kernels.as_query_array(qs)
        pts = self._pts_arr
        idx = np.empty(Q.shape[0], dtype=np.intp)
        dist = np.empty(Q.shape[0], dtype=np.float64)
        for s in range(0, Q.shape[0], chunk):
            d2 = kernels.pairwise_sq_distances(Q[s : s + chunk], pts)
            win = d2.argmin(axis=1)
            idx[s : s + chunk] = win
            dist[s : s + chunk] = np.sqrt(d2[np.arange(win.shape[0]), win])
        return idx, dist

    def range_disk_many(
        self, qs, radius: float, strict: bool = False, chunk: int = 512
    ) -> List[np.ndarray]:
        """Batched disk-range reports: one index array per query."""
        Q = kernels.as_query_array(qs)
        pts = self._pts_arr
        r2 = float(radius) * float(radius)
        out: List[np.ndarray] = []
        for s in range(0, Q.shape[0], chunk):
            d2 = kernels.pairwise_sq_distances(Q[s : s + chunk], pts)
            hits = (d2 < r2) if strict else (d2 <= r2)
            out.extend(np.nonzero(row)[0] for row in hits)
        return out

    def range_disk(self, q, radius: float, strict: bool = False) -> List[int]:
        """Indices of points within ``radius`` of ``q``."""
        qx, qy = float(q[0]), float(q[1])
        out: List[int] = []
        r2 = radius * radius
        cx0 = int(math.floor((qx - radius) / self.cell))
        cx1 = int(math.floor((qx + radius) / self.cell))
        cy0 = int(math.floor((qy - radius) / self.cell))
        cy1 = int(math.floor((qy + radius) / self.cell))
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                for i in self._buckets.get((cx, cy), ()):
                    px, py = self.points[i]
                    d2 = (px - qx) ** 2 + (py - qy) ** 2
                    if (d2 < r2) if strict else (d2 <= r2):
                        out.append(i)
        return out

    def nearest(self, q) -> Tuple[int, float]:
        """Nearest point by ring-growing search."""
        qx, qy = float(q[0]), float(q[1])
        r = self.cell
        while True:
            hits = self.range_disk((qx, qy), r)
            if hits:
                best = min(
                    hits,
                    key=lambda i: (self.points[i][0] - qx) ** 2
                    + (self.points[i][1] - qy) ** 2,
                )
                return best, math.hypot(
                    self.points[best][0] - qx, self.points[best][1] - qy
                )
            r *= 2.0
