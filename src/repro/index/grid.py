"""Uniform hashing grid over points.

A simple comparison index: bucket points by cell, answer disk-range
reports by scanning the cells overlapped by the query disk.  Used as a
baseline against the kd-tree in the stage-2 benchmarks and as a helper in
construction code.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EmptyIndexError
from ..geometry import kernels


class GridIndex:
    """Fixed-resolution bucket grid over a static point set."""

    def __init__(self, points: Sequence, cell: Optional[float] = None):
        self.points: List[Tuple[float, float]] = [
            (float(p[0]), float(p[1])) for p in points
        ]
        if not self.points:
            raise EmptyIndexError("GridIndex over empty point set")
        if cell is None:
            xs = [p[0] for p in self.points]
            ys = [p[1] for p in self.points]
            area = max(max(xs) - min(xs), 1e-9) * max(max(ys) - min(ys), 1e-9)
            cell = math.sqrt(area / len(self.points)) or 1.0
        self.cell = float(cell)
        self._buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for i, (x, y) in enumerate(self.points):
            self._buckets[self._key(x, y)].append(i)
        self._pts_arr = np.asarray(self.points, dtype=np.float64)
        self._cell_arrays: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None

    def _key(self, x: float, y: float) -> Tuple[int, int]:
        return (int(math.floor(x / self.cell)), int(math.floor(y / self.cell)))

    def _cell_index(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array view of the bucket index: occupied-cell rectangles
        ``(c, 4)`` plus a CSR of member point indices (cells in sorted
        key order, members in ascending index order — deterministic)."""
        if self._cell_arrays is None:
            keys = sorted(self._buckets)
            rects = np.asarray(
                [
                    (
                        cx * self.cell,
                        cy * self.cell,
                        (cx + 1) * self.cell,
                        (cy + 1) * self.cell,
                    )
                    for cx, cy in keys
                ],
                dtype=np.float64,
            )
            members = [sorted(self._buckets[key]) for key in keys]
            ptr = np.zeros(len(keys) + 1, dtype=np.intp)
            np.cumsum([len(ms) for ms in members], out=ptr[1:])
            flat = np.asarray(
                [i for ms in members for i in ms], dtype=np.intp
            )
            self._cell_arrays = (rects, ptr, flat)
        return self._cell_arrays

    # -- batch queries ------------------------------------------------------
    def query_many(
        self, qs, chunk: int = 512, return_candidates: bool = False
    ):
        """Batched nearest neighbors: ``(indices, distances)``, each ``(m,)``.

        Candidates are pre-filtered through the bucket index instead of
        scanning all ``n`` objects per query: queries sharing a grid
        cell are answered together — the smallest *maxdist* from their
        cell to any occupied cell upper-bounds their NN distance, so
        only cells whose *mindist* stays under that bound contribute
        candidates (cell-level rect–rect arithmetic, never an
        ``(m, n)`` point scan).  ``return_candidates=True`` additionally
        returns the per-query candidate count — a deterministic function
        of the point/query geometry, pinned by the regression tests.
        """
        Q = kernels.as_query_array(qs)
        m = Q.shape[0]
        idx = np.empty(m, dtype=np.intp)
        dist = np.empty(m, dtype=np.float64)
        cand = np.zeros(m, dtype=np.intp)
        if m == 0:
            return (idx, dist, cand) if return_candidates else (idx, dist)
        rects, ptr, flat = self._cell_index()
        pts = self._pts_arr
        n = pts.shape[0]
        qcell = np.floor(Q / self.cell).astype(np.int64)
        ucells, inverse = np.unique(qcell, axis=0, return_inverse=True)
        if ucells.shape[0] > max(32, n // 2):
            # Scattered queries (almost one grid cell each): per-cell
            # dispatch would cost more than it prunes — fall back to
            # the vectorized dense scan, whose candidate set is all n.
            for s in range(0, m, chunk):
                d2 = kernels.pairwise_sq_distances(Q[s : s + chunk], pts)
                win = d2.argmin(axis=1)
                idx[s : s + chunk] = win
                dist[s : s + chunk] = np.sqrt(
                    d2[np.arange(win.shape[0]), win]
                )
            cand[:] = n
            return (idx, dist, cand) if return_candidates else (idx, dist)
        qrects = np.column_stack(
            [
                ucells[:, 0] * self.cell,
                ucells[:, 1] * self.cell,
                (ucells[:, 0] + 1) * self.cell,
                (ucells[:, 1] + 1) * self.cell,
            ]
        )
        by_cell = np.argsort(inverse, kind="stable")
        starts = np.searchsorted(inverse[by_cell], np.arange(ucells.shape[0] + 1))
        for s in range(0, ucells.shape[0], chunk):
            e = min(s + chunk, ucells.shape[0])
            mind = kernels.rect_rect_mindist_many(qrects[s:e], rects)
            maxd = kernels.rect_rect_maxdist_many(qrects[s:e], rects)
            ub = maxd.min(axis=1)
            # Ulp slack (the planner's cutoff convention): a cell whose
            # mindist lands a rounding error above the bound still
            # contributes its candidates.
            alive = mind <= ub[:, None] * (1.0 + 1e-12)
            for u in range(s, e):
                cells = np.flatnonzero(alive[u - s])
                gather, _ = kernels.csr_segment_gather(ptr, cells)
                # Ascending order so distance ties resolve to the lowest
                # index, exactly like a dense scan's argmin.
                members = np.sort(flat[gather])
                rows = by_cell[starts[u] : starts[u + 1]]
                d2 = kernels.pairwise_sq_distances(Q[rows], pts[members])
                win = d2.argmin(axis=1)
                idx[rows] = members[win]
                dist[rows] = np.sqrt(d2[np.arange(rows.shape[0]), win])
                cand[rows] = members.shape[0]
        return (idx, dist, cand) if return_candidates else (idx, dist)

    def range_disk_many(
        self, qs, radius: float, strict: bool = False, chunk: int = 512
    ) -> List[np.ndarray]:
        """Batched disk-range reports: one index array per query."""
        Q = kernels.as_query_array(qs)
        pts = self._pts_arr
        r2 = float(radius) * float(radius)
        out: List[np.ndarray] = []
        for s in range(0, Q.shape[0], chunk):
            d2 = kernels.pairwise_sq_distances(Q[s : s + chunk], pts)
            hits = (d2 < r2) if strict else (d2 <= r2)
            out.extend(np.nonzero(row)[0] for row in hits)
        return out

    def range_disk(self, q, radius: float, strict: bool = False) -> List[int]:
        """Indices of points within ``radius`` of ``q``."""
        qx, qy = float(q[0]), float(q[1])
        out: List[int] = []
        r2 = radius * radius
        cx0 = int(math.floor((qx - radius) / self.cell))
        cx1 = int(math.floor((qx + radius) / self.cell))
        cy0 = int(math.floor((qy - radius) / self.cell))
        cy1 = int(math.floor((qy + radius) / self.cell))
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                for i in self._buckets.get((cx, cy), ()):
                    px, py = self.points[i]
                    d2 = (px - qx) ** 2 + (py - qy) ** 2
                    if (d2 < r2) if strict else (d2 <= r2):
                        out.append(i)
        return out

    def nearest(self, q) -> Tuple[int, float]:
        """Nearest point by ring-growing search."""
        qx, qy = float(q[0]), float(q[1])
        r = self.cell
        while True:
            hits = self.range_disk((qx, qy), r)
            if hits:
                best = min(
                    hits,
                    key=lambda i: (self.points[i][0] - qx) ** 2
                    + (self.points[i][1] - qy) ** 2,
                )
                return best, math.hypot(
                    self.points[best][0] - qx, self.points[best][1] - qy
                )
            r *= 2.0
