"""Array-based bulk loaders for grouping SoA objects into leaves.

The recursive pointer builds of :class:`repro.index.KdTree` /
:class:`repro.index.RTree` construct one Python node per subtree; the
query planner only ever needs the *leaf level* — a partition of the
object indices into spatially coherent groups plus one aggregate bbox
per group.  These builders produce exactly that, straight from the SoA
arrays with ``np.argsort`` / ``np.argpartition`` and no recursion:

* :func:`str_leaves` — Sort-Tile-Recursive packing of bbox centers (the
  classic R-tree bulk load);
* :func:`kd_leaves` — iterative median splits of a point/center array
  (the kd-tree layout, medians via ``np.argpartition``).

Both return a list of index arrays partitioning ``range(n)``;
:func:`group_bboxes` aggregates member bboxes per group.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

__all__ = ["str_leaves", "kd_leaves", "group_bboxes", "str_hierarchy"]


def str_leaves(bboxes, capacity: int = 16) -> List[np.ndarray]:
    """Partition bbox indices into STR tiles of at most ``capacity``."""
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    B = np.asarray(bboxes, dtype=np.float64)
    if B.ndim != 2 or B.shape[1] != 4:
        raise ValueError(f"bbox array of shape {B.shape}; expected (n, 4)")
    n = B.shape[0]
    if n == 0:
        return []
    cx = B[:, 0] + B[:, 2]
    cy = B[:, 1] + B[:, 3]
    order = np.argsort(cx, kind="stable")
    n_leaves = math.ceil(n / capacity)
    slices = math.ceil(math.sqrt(n_leaves))
    per_slice = math.ceil(n / slices)
    leaves: List[np.ndarray] = []
    for s in range(0, n, per_slice):
        tile = order[s : s + per_slice]
        tile = tile[np.argsort(cy[tile], kind="stable")]
        for t in range(0, tile.shape[0], capacity):
            leaves.append(tile[t : t + capacity])
    return leaves


def kd_leaves(points, leaf_size: int = 16) -> List[np.ndarray]:
    """Partition point indices by iterative kd median splits.

    Medians are found with ``np.argpartition`` (linear time), alternating
    the split axis by depth exactly as the recursive build would; the
    work list replaces the call stack.
    """
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    P = np.asarray(points, dtype=np.float64)
    if P.ndim != 2 or P.shape[1] != 2:
        raise ValueError(f"point array of shape {P.shape}; expected (n, 2)")
    n = P.shape[0]
    if n == 0:
        return []
    leaves: List[np.ndarray] = []
    work = [(np.arange(n, dtype=np.intp), 0)]
    while work:
        idxs, depth = work.pop()
        if idxs.shape[0] <= leaf_size:
            leaves.append(idxs)
            continue
        axis = depth % 2
        mid = idxs.shape[0] // 2
        part = np.argpartition(P[idxs, axis], mid)
        work.append((idxs[part[:mid]], depth + 1))
        work.append((idxs[part[mid:]], depth + 1))
    return leaves


def str_hierarchy(
    bboxes, leaf_size: int = 32, fanout: int = 8
) -> List[Tuple[List[np.ndarray], np.ndarray]]:
    """Bottom-up STR packing of ``bboxes`` into a full level hierarchy.

    Level 0 partitions the items into leaves of at most ``leaf_size``
    (exactly :func:`str_leaves`); each subsequent level STR-packs the
    level below by ``fanout`` until a single root group remains.  Every
    level is a ``(groups, group_bboxes)`` pair where ``groups`` indexes
    the level below (level 0 indexes the items themselves).  This is the
    array-form tree behind the dual-tree candidate generator
    (:mod:`repro.core.dual_tree`) — no node objects, no recursion.
    """
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    groups = str_leaves(bboxes, leaf_size)
    if not groups:
        return []
    gb = group_bboxes(bboxes, groups)
    levels = [(groups, gb)]
    while len(groups) > 1:
        groups = str_leaves(gb, fanout)
        gb = group_bboxes(gb, groups)
        levels.append((groups, gb))
    return levels


def group_bboxes(bboxes, groups: List[np.ndarray]) -> np.ndarray:
    """Aggregate member bboxes per group, shape ``(len(groups), 4)``."""
    B = np.asarray(bboxes, dtype=np.float64)
    out = np.empty((len(groups), 4), dtype=np.float64)
    for g, members in enumerate(groups):
        sub = B[members]
        out[g, 0] = sub[:, 0].min()
        out[g, 1] = sub[:, 1].min()
        out[g, 2] = sub[:, 2].max()
        out[g, 3] = sub[:, 3].max()
    return out
