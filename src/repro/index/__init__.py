"""Database-style indexing substrate: kd-tree, R-tree, grid, samplers,
and the persistent label store of Section 2.1.

The tree indexes carry batched ``query_many`` probes (vectorized rect
mindist/maxdist against whole node levels) and the samplers a vectorized
``sample_many``, feeding the batch engines in :mod:`repro.core`."""

from .bulk import group_bboxes, kd_leaves, str_leaves
from .grid import GridIndex
from .kdtree import KdTree
from .persistence import DeltaSetStore
from .quadtree import QuadTree
from .rtree import (
    RTree,
    rect_intersects_disk,
    rect_maxdist,
    rect_mindist,
    rect_union,
    rects_intersect,
)
from .sampler import AliasSampler, CdfSampler

__all__ = [
    "AliasSampler",
    "CdfSampler",
    "DeltaSetStore",
    "GridIndex",
    "group_bboxes",
    "kd_leaves",
    "str_leaves",
    "KdTree",
    "QuadTree",
    "RTree",
    "rect_intersects_disk",
    "rect_maxdist",
    "rect_mindist",
    "rect_union",
    "rects_intersect",
]
