"""PR quadtree.

The alternative retrieval structure suggested by the paper's Remark (ii)
of Section 4.3: "one may use quad-trees and a branch-and-bound algorithm
to retrieve m points of S closest to q [Har11]".  Exposed as an
alternative backend of the spiral search.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence, Tuple

from ..errors import EmptyIndexError

_LEAF_SIZE = 8
_MAX_DEPTH = 32


class _QNode:
    __slots__ = ("xmin", "ymin", "xmax", "ymax", "children", "indices")

    def __init__(self, xmin, ymin, xmax, ymax):
        self.xmin, self.ymin, self.xmax, self.ymax = xmin, ymin, xmax, ymax
        self.children: Optional[List["_QNode"]] = None
        self.indices: List[int] = []

    def mindist(self, q) -> float:
        dx = max(self.xmin - q[0], 0.0, q[0] - self.xmax)
        dy = max(self.ymin - q[1], 0.0, q[1] - self.ymax)
        return math.hypot(dx, dy)


class QuadTree:
    """Point quadtree with k-NN and disk-range queries."""

    def __init__(self, points: Sequence):
        self.points: List[Tuple[float, float]] = [
            (float(p[0]), float(p[1])) for p in points
        ]
        if not self.points:
            raise EmptyIndexError("QuadTree over empty point set")
        xs = [p[0] for p in self.points]
        ys = [p[1] for p in self.points]
        pad = 1e-9 + 1e-9 * max(map(abs, xs + ys))
        self.root = _QNode(
            min(xs) - pad, min(ys) - pad, max(xs) + pad, max(ys) + pad
        )
        for i in range(len(self.points)):
            self._insert(self.root, i, 0)

    def _insert(self, node: _QNode, i: int, depth: int) -> None:
        while True:
            if node.children is None:
                node.indices.append(i)
                if len(node.indices) > _LEAF_SIZE and depth < _MAX_DEPTH:
                    self._split(node)
                    # Fall through: re-route the stored points.
                    indices, node.indices = node.indices, []
                    for j in indices:
                        self._insert(
                            self._child_for(node, self.points[j]), j, depth + 1
                        )
                return
            node = self._child_for(node, self.points[i])
            depth += 1

    def _split(self, node: _QNode) -> None:
        mx = 0.5 * (node.xmin + node.xmax)
        my = 0.5 * (node.ymin + node.ymax)
        node.children = [
            _QNode(node.xmin, node.ymin, mx, my),
            _QNode(mx, node.ymin, node.xmax, my),
            _QNode(node.xmin, my, mx, node.ymax),
            _QNode(mx, my, node.xmax, node.ymax),
        ]

    def _child_for(self, node: _QNode, p) -> _QNode:
        mx = 0.5 * (node.xmin + node.xmax)
        my = 0.5 * (node.ymin + node.ymax)
        idx = (1 if p[0] >= mx else 0) + (2 if p[1] >= my else 0)
        return node.children[idx]

    # -- queries -------------------------------------------------------------
    def k_nearest(self, q, k: int) -> List[Tuple[float, int]]:
        """The ``k`` nearest points as sorted ``(distance, index)`` pairs
        (the Har11-style branch-and-bound of Remark (ii))."""
        k = min(k, len(self.points))
        qx, qy = float(q[0]), float(q[1])
        worst: List[Tuple[float, int]] = []  # max-heap (negated)
        heap: List[Tuple[float, int, _QNode]] = [(0.0, 0, self.root)]
        counter = 0
        while heap:
            lb, _, node = heapq.heappop(heap)
            if len(worst) == k and lb >= -worst[0][0]:
                break
            if node.children is None:
                for i in node.indices:
                    px, py = self.points[i]
                    d = math.hypot(px - qx, py - qy)
                    if len(worst) < k:
                        heapq.heappush(worst, (-d, i))
                    elif d < -worst[0][0]:
                        heapq.heapreplace(worst, (-d, i))
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        heap, (child.mindist((qx, qy)), counter, child)
                    )
        return sorted((-negd, i) for negd, i in worst)

    def range_disk(self, q, radius: float, strict: bool = False) -> List[int]:
        """Indices within ``radius`` of ``q``."""
        out: List[int] = []
        qx, qy = float(q[0]), float(q[1])
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mindist((qx, qy)) > radius:
                continue
            if node.children is None:
                for i in node.indices:
                    px, py = self.points[i]
                    d = math.hypot(px - qx, py - qy)
                    if (d < radius) if strict else (d <= radius):
                        out.append(i)
            else:
                stack.extend(node.children)
        return out
