"""Discrete-distribution samplers.

Theorem 4.3 instantiates each uncertain point ``P_i`` in ``O(log k)``
time "after preprocessing each ``P_i`` into a balanced binary tree"
([MR95]); :class:`CdfSampler` is that structure.  :class:`AliasSampler`
(Vose's method) improves the draw to O(1) and is the default.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence

import numpy as np

from ..config import SeedLike, default_rng
from ..errors import DistributionError


def _validate(weights: Sequence[float]) -> List[float]:
    ws = [float(w) for w in weights]
    if not ws:
        raise DistributionError("empty weight vector")
    if any(w < 0.0 for w in ws):
        raise DistributionError("negative weight")
    total = sum(ws)
    if total <= 0.0:
        raise DistributionError("weights sum to zero")
    return [w / total for w in ws]


class CdfSampler:
    """O(log k) inverse-cdf sampling via binary search."""

    def __init__(self, weights: Sequence[float]):
        probs = _validate(weights)
        self.cdf: List[float] = []
        acc = 0.0
        for p in probs:
            acc += p
            self.cdf.append(acc)
        self.cdf[-1] = 1.0  # guard against accumulated rounding

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self.cdf, rng.random())

    def sample_many(self, rng: SeedLike, size: int) -> np.ndarray:
        """``size`` indices in one vectorized inverse-cdf draw."""
        g = default_rng(rng)
        return np.searchsorted(
            np.asarray(self.cdf), g.random(size), side="left"
        ).astype(np.intp)


class AliasSampler:
    """O(1) sampling by Vose's alias method."""

    def __init__(self, weights: Sequence[float]):
        probs = _validate(weights)
        k = len(probs)
        self.k = k
        scaled = [p * k for p in probs]
        self.prob: List[float] = [0.0] * k
        self.alias: List[int] = [0] * k
        small = [i for i, s in enumerate(scaled) if s < 1.0]
        large = [i for i, s in enumerate(scaled) if s >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self.prob[s] = scaled[s]
            self.alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for i in large:
            self.prob[i] = 1.0
        for i in small:
            self.prob[i] = 1.0

    def sample(self, rng: random.Random) -> int:
        u = rng.random() * self.k
        i = int(u)
        if i >= self.k:  # u == k on the boundary
            i = self.k - 1
        frac = u - i
        return i if frac < self.prob[i] else self.alias[i]

    def sample_many(self, rng: SeedLike, size: int) -> np.ndarray:
        """``size`` indices by one vectorized alias-table lookup."""
        g = default_rng(rng)
        u = g.random(size) * self.k
        i = np.minimum(u.astype(np.intp), self.k - 1)
        frac = u - i
        prob = np.asarray(self.prob)
        alias = np.asarray(self.alias, dtype=np.intp)
        return np.where(frac < prob[i], i, alias[i])
