"""Persistent storage of per-cell label sets.

Section 2.1 ("Storing ``P_phi``'s for ``V!=0(P)``") observes that two
adjacent cells of the diagram have label sets with symmetric difference
exactly one, so a persistent structure ([DSST89]) stores all labels in
O(mu) total space while supporting ``O(log n + |P_phi|)`` retrieval.

This module implements the practical equivalent: a *delta spanning tree*.
Cells are nodes of the cell-adjacency graph; a BFS spanning tree is
rooted at an arbitrary cell whose full set is stored; every other cell
stores only the +/- one-element delta along its tree edge.  Retrieval
walks to the root accumulating deltas (O(tree depth + answer)); an LRU
of materialised ancestors caps repeated walks.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple


class DeltaSetStore:
    """Space-efficient storage for a family of near-identical sets.

    Parameters
    ----------
    sets:
        The label set of each cell (only consulted during construction;
        the store keeps deltas, not copies).
    adjacency:
        Iterable of ``(i, j)`` cell pairs that are adjacent in the
        subdivision.  Pairs whose sets differ by more than
        ``max_delta`` elements are kept but cost proportional space.
    """

    def __init__(
        self,
        sets: Sequence[Iterable[Hashable]],
        adjacency: Iterable[Tuple[int, int]],
        cache_size: int = 64,
    ):
        materialised = [frozenset(s) for s in sets]
        n = len(materialised)
        adj: List[List[int]] = [[] for _ in range(n)]
        for i, j in adjacency:
            adj[i].append(j)
            adj[j].append(i)
        self.parent: List[int] = [-1] * n
        self.add_delta: List[Tuple[Hashable, ...]] = [()] * n
        self.del_delta: List[Tuple[Hashable, ...]] = [()] * n
        self.roots: List[int] = []
        self.root_sets: Dict[int, FrozenSet] = {}
        visited = [False] * n
        for start in range(n):
            if visited[start]:
                continue
            # BFS spanning tree per connected component.
            self.roots.append(start)
            self.root_sets[start] = materialised[start]
            visited[start] = True
            queue = deque([start])
            while queue:
                u = queue.popleft()
                for v in adj[u]:
                    if visited[v]:
                        continue
                    visited[v] = True
                    self.parent[v] = u
                    self.add_delta[v] = tuple(materialised[v] - materialised[u])
                    self.del_delta[v] = tuple(materialised[u] - materialised[v])
                    queue.append(v)
        self._cache: Dict[int, FrozenSet] = dict(self.root_sets)
        self._cache_size = max(cache_size, len(self.roots))

    def delta_space(self) -> int:
        """Total number of stored delta elements (the O(mu) bound)."""
        return sum(len(a) + len(d) for a, d in zip(self.add_delta, self.del_delta))

    def get(self, cell: int) -> FrozenSet:
        """The label set of ``cell``."""
        path: List[int] = []
        cur = cell
        while cur not in self._cache:
            path.append(cur)
            cur = self.parent[cur]
        current: FrozenSet = self._cache[cur]
        for node in reversed(path):
            s = set(current)
            s.difference_update(self.del_delta[node])
            s.update(self.add_delta[node])
            current = frozenset(s)
            if len(self._cache) < self._cache_size:
                self._cache[node] = current
        return current
