"""STR bulk-loaded R-tree.

The substrate for the [CKP04]-style branch-and-prune baseline (the paper's
Section 1.2 "Nonzero NNs") and for rectangle/disk range reporting over
uncertainty-region bounding boxes.  Built once by Sort-Tile-Recursive
packing; no dynamic inserts are needed by the library.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import EmptyIndexError

Rect = Tuple[float, float, float, float]

_NODE_CAPACITY = 16


def rect_union(rects: Sequence[Rect]) -> Rect:
    return (
        min(r[0] for r in rects),
        min(r[1] for r in rects),
        max(r[2] for r in rects),
        max(r[3] for r in rects),
    )


def rects_intersect(a: Rect, b: Rect) -> bool:
    return not (a[2] < b[0] or b[2] < a[0] or a[3] < b[1] or b[3] < a[1])


def rect_mindist(q, r: Rect) -> float:
    dx = max(r[0] - q[0], 0.0, q[0] - r[2])
    dy = max(r[1] - q[1], 0.0, q[1] - r[3])
    return math.hypot(dx, dy)


def rect_maxdist(q, r: Rect) -> float:
    dx = max(abs(q[0] - r[0]), abs(q[0] - r[2]))
    dy = max(abs(q[1] - r[1]), abs(q[1] - r[3]))
    return math.hypot(dx, dy)


def rect_intersects_disk(r: Rect, center, radius: float) -> bool:
    return rect_mindist(center, r) <= radius


class _RNode:
    __slots__ = ("bbox", "children", "entries")

    def __init__(self):
        self.bbox: Rect = (0.0, 0.0, 0.0, 0.0)
        self.children: Optional[List["_RNode"]] = None
        self.entries: Optional[List[int]] = None  # leaf payload indices


class RTree:
    """R-tree over rectangles, bulk-loaded with Sort-Tile-Recursive."""

    def __init__(self, rects: Sequence[Rect]):
        self.rects: List[Rect] = [tuple(map(float, r)) for r in rects]
        if not self.rects:
            raise EmptyIndexError("RTree over empty rectangle set")
        self.root = self._str_build(list(range(len(self.rects))))

    # -- construction ------------------------------------------------------
    def _leaf(self, idxs: List[int]) -> _RNode:
        node = _RNode()
        node.entries = idxs
        node.bbox = rect_union([self.rects[i] for i in idxs])
        return node

    def _str_build(self, idxs: List[int]) -> _RNode:
        if len(idxs) <= _NODE_CAPACITY:
            return self._leaf(idxs)
        # Sort-Tile-Recursive: sort by x-center, slice into vertical tiles,
        # sort each tile by y-center, pack runs of capacity.
        def cx(i):
            r = self.rects[i]
            return r[0] + r[2]

        def cy(i):
            r = self.rects[i]
            return r[1] + r[3]

        leaves_needed = math.ceil(len(idxs) / _NODE_CAPACITY)
        slices = math.ceil(math.sqrt(leaves_needed))
        idxs = sorted(idxs, key=cx)
        per_slice = math.ceil(len(idxs) / slices)
        leaves: List[_RNode] = []
        for s in range(0, len(idxs), per_slice):
            tile = sorted(idxs[s : s + per_slice], key=cy)
            for t in range(0, len(tile), _NODE_CAPACITY):
                leaves.append(self._leaf(tile[t : t + _NODE_CAPACITY]))
        # Pack upward.
        level = leaves
        while len(level) > 1:
            nxt: List[_RNode] = []
            for s in range(0, len(level), _NODE_CAPACITY):
                group = level[s : s + _NODE_CAPACITY]
                parent = _RNode()
                parent.children = group
                parent.bbox = rect_union([g.bbox for g in group])
                nxt.append(parent)
            level = nxt
        return level[0]

    # -- queries -------------------------------------------------------------
    def query_rect(self, rect: Rect) -> List[int]:
        """Payload indices whose rectangles intersect ``rect``."""
        out: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not rects_intersect(node.bbox, rect):
                continue
            if node.entries is not None:
                out.extend(
                    i for i in node.entries if rects_intersect(self.rects[i], rect)
                )
            else:
                stack.extend(node.children)
        return out

    def query_disk(self, center, radius: float) -> List[int]:
        """Payload indices whose rectangles intersect the closed disk."""
        out: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not rect_intersects_disk(node.bbox, center, radius):
                continue
            if node.entries is not None:
                out.extend(
                    i
                    for i in node.entries
                    if rect_intersects_disk(self.rects[i], center, radius)
                )
            else:
                stack.extend(node.children)
        return out

    def best_first_min(
        self, q, exact: Callable[[int], float]
    ) -> Tuple[int, float]:
        """Best-first search for ``argmin_i exact(i)``.

        ``rect_mindist(q, bbox)`` must lower-bound ``exact`` on every
        subtree (true whenever ``exact(i) >= mindist(q, rect_i)``, e.g.
        minimum or maximum distance to a region inside its bbox).  This is
        the generic engine of the [CKP04] branch-and-prune.
        """
        best = math.inf
        best_i = -1
        counter = 0
        heap: List[Tuple[float, int, _RNode]] = [
            (rect_mindist(q, self.root.bbox), counter, self.root)
        ]
        while heap:
            lb, _, node = heapq.heappop(heap)
            if lb >= best:
                break
            if node.entries is not None:
                for i in node.entries:
                    v = exact(i)
                    if v < best:
                        best, best_i = v, i
                continue
            for child in node.children:
                counter += 1
                heapq.heappush(
                    heap, (rect_mindist(q, child.bbox), counter, child)
                )
        return best_i, best
