"""STR bulk-loaded R-tree.

The substrate for the [CKP04]-style branch-and-prune baseline (the paper's
Section 1.2 "Nonzero NNs") and for rectangle/disk range reporting over
uncertainty-region bounding boxes.  Built once by Sort-Tile-Recursive
packing; no dynamic inserts are needed by the library.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EmptyIndexError
from ..geometry import kernels

Rect = Tuple[float, float, float, float]

_NODE_CAPACITY = 16


def rect_union(rects: Sequence[Rect]) -> Rect:
    return (
        min(r[0] for r in rects),
        min(r[1] for r in rects),
        max(r[2] for r in rects),
        max(r[3] for r in rects),
    )


def rects_intersect(a: Rect, b: Rect) -> bool:
    return not (a[2] < b[0] or b[2] < a[0] or a[3] < b[1] or b[3] < a[1])


# Thin aliases kept for API compatibility: the scalar rect distance
# math lives in geometry.kernels alongside its batched twins.
rect_mindist = kernels.rect_mindist
rect_maxdist = kernels.rect_maxdist


def rect_intersects_disk(r: Rect, center, radius: float) -> bool:
    return rect_mindist(center, r) <= radius


class _RNode:
    __slots__ = ("bbox", "children", "entries")

    def __init__(self):
        self.bbox: Rect = (0.0, 0.0, 0.0, 0.0)
        self.children: Optional[List["_RNode"]] = None
        self.entries: Optional[List[int]] = None  # leaf payload indices


class RTree:
    """R-tree over rectangles, bulk-loaded with Sort-Tile-Recursive."""

    def __init__(self, rects: Sequence[Rect]):
        self.rects: List[Rect] = [tuple(map(float, r)) for r in rects]
        if not self.rects:
            raise EmptyIndexError("RTree over empty rectangle set")
        self.root = self._str_build(list(range(len(self.rects))))
        self._rect_arr = np.asarray(self.rects, dtype=np.float64)

    # -- construction ------------------------------------------------------
    def _leaf(self, idxs: List[int]) -> _RNode:
        node = _RNode()
        node.entries = idxs
        node.bbox = rect_union([self.rects[i] for i in idxs])
        return node

    def _str_build(self, idxs: List[int]) -> _RNode:
        if len(idxs) <= _NODE_CAPACITY:
            return self._leaf(idxs)
        # Sort-Tile-Recursive: sort by x-center, slice into vertical tiles,
        # sort each tile by y-center, pack runs of capacity.
        def cx(i):
            r = self.rects[i]
            return r[0] + r[2]

        def cy(i):
            r = self.rects[i]
            return r[1] + r[3]

        leaves_needed = math.ceil(len(idxs) / _NODE_CAPACITY)
        slices = math.ceil(math.sqrt(leaves_needed))
        idxs = sorted(idxs, key=cx)
        per_slice = math.ceil(len(idxs) / slices)
        leaves: List[_RNode] = []
        for s in range(0, len(idxs), per_slice):
            tile = sorted(idxs[s : s + per_slice], key=cy)
            for t in range(0, len(tile), _NODE_CAPACITY):
                leaves.append(self._leaf(tile[t : t + _NODE_CAPACITY]))
        # Pack upward.
        level = leaves
        while len(level) > 1:
            nxt: List[_RNode] = []
            for s in range(0, len(level), _NODE_CAPACITY):
                group = level[s : s + _NODE_CAPACITY]
                parent = _RNode()
                parent.children = group
                parent.bbox = rect_union([g.bbox for g in group])
                nxt.append(parent)
            level = nxt
        return level[0]

    # -- queries -------------------------------------------------------------
    def query_rect(self, rect: Rect) -> List[int]:
        """Payload indices whose rectangles intersect ``rect``."""
        out: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not rects_intersect(node.bbox, rect):
                continue
            if node.entries is not None:
                out.extend(
                    i for i in node.entries if rects_intersect(self.rects[i], rect)
                )
            else:
                stack.extend(node.children)
        return out

    def query_disk(self, center, radius: float) -> List[int]:
        """Payload indices whose rectangles intersect the closed disk."""
        out: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not rect_intersects_disk(node.bbox, center, radius):
                continue
            if node.entries is not None:
                out.extend(
                    i
                    for i in node.entries
                    if rect_intersects_disk(self.rects[i], center, radius)
                )
            else:
                stack.extend(node.children)
        return out

    # -- batch queries ------------------------------------------------------
    def mindist_many(self, qs) -> np.ndarray:
        """``rect_mindist(q, rect_i)`` for every query/payload pair, ``(m, n)``."""
        return kernels.rect_mindist_many(qs, self._rect_arr)

    def maxdist_many(self, qs) -> np.ndarray:
        """``rect_maxdist(q, rect_i)`` for every query/payload pair, ``(m, n)``."""
        return kernels.rect_maxdist_many(qs, self._rect_arr)

    def query_many(
        self, qs, exact_many: Callable[[int, np.ndarray], np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched best-first search for ``argmin_i exact(i, q)``.

        The batch twin of :meth:`best_first_min`: ``exact_many(i, Qsub)``
        must return the exact values of payload ``i`` for a query
        submatrix, and must be bracketed by the payload bbox —
        ``rect_mindist(q, rect_i) <= exact(i, q) <= rect_maxdist(q, rect_i)``
        (true for min/max/expected distance to a region inside its bbox).

        Descends the tree one level at a time, evaluating the rect
        mindist/maxdist of *all* surviving nodes of a level against *all*
        queries in single vectorized kernels; maxdist tightens a
        per-query upper bound that prunes the next level's frontier.  At
        the leaf level the surviving payloads are refined best-first, so
        ``exact_many`` runs only on (payload, query) pairs whose lower
        bound still beats the best exact value found so far.

        Returns ``(indices, values)`` arrays of shape ``(m,)``.
        """
        Q = kernels.as_query_array(qs)
        m = Q.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float64)
        level: List[_RNode] = [self.root]
        active = np.ones((m, 1), dtype=bool)
        ub = kernels.rect_maxdist_many(Q, [self.root.bbox])[:, 0]
        while level[0].children is not None:
            children: List[_RNode] = []
            parent_of: List[int] = []
            for j, node in enumerate(level):
                for child in node.children:
                    children.append(child)
                    parent_of.append(j)
            bboxes = np.asarray([c.bbox for c in children], dtype=np.float64)
            mind = kernels.rect_mindist_many(Q, bboxes)
            maxd = kernels.rect_maxdist_many(Q, bboxes)
            child_active = active[:, parent_of] & (mind <= ub[:, None])
            ub = np.minimum(
                ub, np.where(child_active, maxd, np.inf).min(axis=1)
            )
            # Re-prune against the tightened bound, then drop nodes no
            # query still needs so the next level's kernels only see the
            # surviving subtrees (never empty: each query keeps at least
            # the node attaining its upper bound).
            child_active &= mind <= ub[:, None]
            keep = np.nonzero(child_active.any(axis=0))[0]
            level = [children[c] for c in keep]
            active = child_active[:, keep]
        best = np.full(m, np.inf)
        best_i = np.full(m, -1, dtype=np.intp)
        # Leaf refinement: gather surviving payload entries per leaf and
        # evaluate exact values best-first by entry lower bound.
        entry_ids: List[int] = []
        entry_leaf: List[int] = []
        for l, leaf in enumerate(level):
            for i in leaf.entries:
                entry_ids.append(i)
                entry_leaf.append(l)
        elb = kernels.rect_mindist_many(
            Q, self._rect_arr[np.asarray(entry_ids, dtype=np.intp)]
        )
        entry_ok = active[:, entry_leaf] & (elb <= ub[:, None])
        for col in np.argsort(elb.min(axis=0), kind="stable"):
            i = entry_ids[col]
            # Non-strict bound: a degenerate (point) bbox has lb == exact,
            # and pruning it on equality would drop the true argmin.
            rows = np.nonzero(
                entry_ok[:, col] & (elb[:, col] <= np.minimum(best, ub))
            )[0]
            if not rows.size:
                continue
            vals = np.asarray(exact_many(i, Q[rows]), dtype=np.float64)
            better = vals < best[rows]
            upd = rows[better]
            best[upd] = vals[better]
            best_i[upd] = i
        return best_i, best

    def best_first_min(
        self, q, exact: Callable[[int], float]
    ) -> Tuple[int, float]:
        """Best-first search for ``argmin_i exact(i)``.

        ``rect_mindist(q, bbox)`` must lower-bound ``exact`` on every
        subtree (true whenever ``exact(i) >= mindist(q, rect_i)``, e.g.
        minimum or maximum distance to a region inside its bbox).  This is
        the generic engine of the [CKP04] branch-and-prune.
        """
        best = math.inf
        best_i = -1
        counter = 0
        heap: List[Tuple[float, int, _RNode]] = [
            (rect_mindist(q, self.root.bbox), counter, self.root)
        ]
        while heap:
            lb, _, node = heapq.heappop(heap)
            if lb >= best:
                break
            if node.entries is not None:
                for i in node.entries:
                    v = exact(i)
                    if v < best:
                        best, best_i = v, i
                continue
            for child in node.children:
                counter += 1
                heapq.heappush(
                    heap, (rect_mindist(q, child.bbox), counter, child)
                )
        return best_i, best

    def best_first_topk(
        self, q, exact: Callable[[int], float], k: int
    ) -> List[Tuple[int, float]]:
        """The ``k`` payloads with the smallest ``exact`` values, sorted.

        Same bracket contract as :meth:`best_first_min`; maintains a
        max-heap of the current ``k`` best exact values and stops
        descending as soon as a subtree's ``rect_mindist`` lower bound
        cannot displace the ``k``-th best — the early-terminating engine
        behind ``ExpectedNNIndex.rank(top=k)``.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        k = min(k, len(self.rects))
        worst: List[Tuple[float, int]] = []  # max-heap via negated values
        counter = 0
        heap: List[Tuple[float, int, _RNode]] = [
            (rect_mindist(q, self.root.bbox), counter, self.root)
        ]
        while heap:
            lb, _, node = heapq.heappop(heap)
            if len(worst) == k and lb >= -worst[0][0]:
                break
            if node.entries is not None:
                for i in node.entries:
                    if len(worst) == k and rect_mindist(q, self.rects[i]) >= -worst[0][0]:
                        continue
                    v = exact(i)
                    if len(worst) < k:
                        heapq.heappush(worst, (-v, i))
                    elif v < -worst[0][0]:
                        heapq.heapreplace(worst, (-v, i))
                continue
            for child in node.children:
                counter += 1
                heapq.heappush(
                    heap, (rect_mindist(q, child.bbox), counter, child)
                )
        return sorted([(i, -nv) for nv, i in worst], key=lambda t: (t[1], t[0]))
