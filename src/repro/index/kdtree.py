"""kd-trees with additively-weighted variants.

The two-stage ``NN!=0`` query plan of Theorem 3.1 needs two primitives:

* stage 1 — ``Delta(q) = min_i d(q, c_i) + r_i`` is an *additively
  weighted* nearest-neighbor query over the disk centers;
* stage 2 — report every ``i`` with ``d(q, c_i) - r_i < Delta(q)``
  (disks intersecting the witness disk), an additively weighted range
  report.

Both are answered by a kd-tree augmented with per-subtree minimum and
maximum weights, giving the branch-and-bound lower bounds
``mindist(q, bbox) + min_w`` and ``mindist(q, bbox) - max_w``.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EmptyIndexError
from ..geometry import kernels

_LEAF_SIZE = 12


class _Node:
    __slots__ = (
        "lo",
        "hi",
        "left",
        "right",
        "indices",
        "bbox",
        "min_w",
        "max_w",
    )

    def __init__(self):
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.indices: Optional[List[int]] = None
        self.bbox: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)
        self.min_w = 0.0
        self.max_w = 0.0


def _bbox_of(points, idxs) -> Tuple[float, float, float, float]:
    xs = [points[i][0] for i in idxs]
    ys = [points[i][1] for i in idxs]
    return (min(xs), min(ys), max(xs), max(ys))


# Thin aliases kept for API compatibility: the scalar bbox distance
# math lives in geometry.kernels alongside its batched twins.
_mindist_bbox = kernels.rect_mindist
_maxdist_bbox = kernels.rect_maxdist


class KdTree:
    """A 2-d tree over points, optionally carrying additive weights.

    Parameters
    ----------
    points:
        Sequence of ``(x, y)``.
    weights:
        Optional per-point additive weights (e.g. disk radii).  When
        omitted all weighted queries treat weights as zero.
    """

    def __init__(self, points: Sequence, weights: Optional[Sequence[float]] = None):
        self.points: List[Tuple[float, float]] = [
            (float(p[0]), float(p[1])) for p in points
        ]
        if not self.points:
            raise EmptyIndexError("KdTree over empty point set")
        n = len(self.points)
        self.weights: List[float] = (
            [float(w) for w in weights] if weights is not None else [0.0] * n
        )
        if len(self.weights) != n:
            raise ValueError("weights length must match points length")
        self.root = self._build(list(range(n)), depth=0)
        self._pts_arr = np.asarray(self.points, dtype=np.float64)
        self._w_arr = np.asarray(self.weights, dtype=np.float64)
        self._leaf_cache: Optional[Tuple[np.ndarray, List[np.ndarray], np.ndarray]] = None

    # -- construction ------------------------------------------------------
    def _build(self, idxs: List[int], depth: int) -> _Node:
        node = _Node()
        node.bbox = _bbox_of(self.points, idxs)
        node.min_w = min(self.weights[i] for i in idxs)
        node.max_w = max(self.weights[i] for i in idxs)
        if len(idxs) <= _LEAF_SIZE:
            node.indices = idxs
            return node
        axis = depth % 2
        idxs.sort(key=lambda i: self.points[i][axis])
        mid = len(idxs) // 2
        node.left = self._build(idxs[:mid], depth + 1)
        node.right = self._build(idxs[mid:], depth + 1)
        return node

    # -- batch queries ------------------------------------------------------
    def _leaves(self) -> Tuple[np.ndarray, List[np.ndarray], np.ndarray]:
        """``(bboxes (L, 4), per-leaf index arrays, per-leaf min weight)``."""
        if self._leaf_cache is None:
            bboxes: List[Tuple[float, float, float, float]] = []
            members: List[np.ndarray] = []
            min_w: List[float] = []
            stack = [self.root]
            while stack:
                node = stack.pop()
                if node.indices is not None:
                    bboxes.append(node.bbox)
                    members.append(np.asarray(node.indices, dtype=np.intp))
                    min_w.append(node.min_w)
                else:
                    stack.append(node.left)
                    stack.append(node.right)
            self._leaf_cache = (
                np.asarray(bboxes, dtype=np.float64),
                members,
                np.asarray(min_w, dtype=np.float64),
            )
        return self._leaf_cache

    def query_many(
        self, qs, use_weights: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched (weighted) nearest neighbors for an ``(m, 2)`` matrix.

        Returns ``(indices, values)`` arrays of shape ``(m,)`` matching
        :meth:`nearest` (or :meth:`weighted_nearest` with
        ``use_weights=True``) per row.  Two vectorized passes over the
        leaf level: the leaf with the smallest lower bound seeds a
        per-query upper bound, then every leaf whose vectorized
        ``mindist(q, bbox) (+ min weight)`` bound still beats that upper
        bound is scanned, best-first by bound column.
        """
        Q = kernels.as_query_array(qs)
        m = Q.shape[0]
        bboxes, members, min_w = self._leaves()
        lb = kernels.rect_mindist_many(Q, bboxes)
        if use_weights:
            lb = lb + min_w[None, :]
        best = np.full(m, np.inf)
        best_i = np.full(m, -1, dtype=np.intp)

        def scan_leaf(leaf: int, rows: np.ndarray) -> None:
            pts = self._pts_arr[members[leaf]]
            d = kernels.pairwise_distances(Q[rows], pts)
            if use_weights:
                d = d + self._w_arr[members[leaf]][None, :]
            col = d.argmin(axis=1)
            vals = d[np.arange(rows.shape[0]), col]
            better = vals < best[rows]
            upd = rows[better]
            best[upd] = vals[better]
            best_i[upd] = members[leaf][col[better]]

        # Pass 1: seed the upper bound from each query's most promising leaf.
        seed = lb.argmin(axis=1)
        for leaf in np.unique(seed):
            scan_leaf(leaf, np.nonzero(seed == leaf)[0])
        # Pass 2: remaining leaves that can still contain a better answer,
        # most promising columns first so ``best`` tightens early.
        order = np.argsort(lb.min(axis=0), kind="stable")
        for leaf in order:
            rows = np.nonzero((lb[:, leaf] < best) & (seed != leaf))[0]
            if rows.size:
                scan_leaf(leaf, rows)
        return best_i, best

    # -- plain queries ------------------------------------------------------
    def nearest(self, q) -> Tuple[int, float]:
        """Index and distance of the nearest point to ``q``."""
        idx, d = self._weighted_nearest(q, use_weights=False)
        return idx, d

    def weighted_nearest(self, q) -> Tuple[int, float]:
        """``argmin_i d(q, p_i) + w_i`` and the attained value.

        With ``w_i = r_i`` this is ``Delta(q)`` of Section 2.1 — the
        lower envelope of the ``Delta_i`` evaluated at ``q``.
        """
        return self._weighted_nearest(q, use_weights=True)

    def _weighted_nearest(self, q, use_weights: bool) -> Tuple[int, float]:
        qx, qy = float(q[0]), float(q[1])
        best = math.inf
        best_i = -1
        heap: List[Tuple[float, int, _Node]] = []
        counter = 0

        def bound(node: _Node) -> float:
            b = _mindist_bbox((qx, qy), node.bbox)
            return b + node.min_w if use_weights else b

        heapq.heappush(heap, (bound(self.root), counter, self.root))
        while heap:
            lb, _, node = heapq.heappop(heap)
            if lb >= best:
                break
            if node.indices is not None:
                for i in node.indices:
                    px, py = self.points[i]
                    d = math.hypot(px - qx, py - qy)
                    if use_weights:
                        d += self.weights[i]
                    if d < best:
                        best, best_i = d, i
                continue
            for child in (node.left, node.right):
                counter += 1
                heapq.heappush(heap, (bound(child), counter, child))
        return best_i, best

    def k_nearest(self, q, k: int) -> List[Tuple[float, int]]:
        """The ``k`` nearest points as ``(distance, index)`` sorted pairs.

        This is the *spiral search* retrieval primitive of Section 4.3
        (the paper's [AC09] structure replaced by its practical
        substitute, cf. Remark (ii)).
        """
        qx, qy = float(q[0]), float(q[1])
        k = min(k, len(self.points))
        worst: List[Tuple[float, int]] = []  # max-heap by negated distance
        heap: List[Tuple[float, int, _Node]] = [(0.0, 0, self.root)]
        counter = 0
        while heap:
            lb, _, node = heapq.heappop(heap)
            if len(worst) == k and lb >= -worst[0][0]:
                break
            if node.indices is not None:
                for i in node.indices:
                    px, py = self.points[i]
                    d = math.hypot(px - qx, py - qy)
                    if len(worst) < k:
                        heapq.heappush(worst, (-d, i))
                    elif d < -worst[0][0]:
                        heapq.heapreplace(worst, (-d, i))
                continue
            for child in (node.left, node.right):
                counter += 1
                heapq.heappush(
                    heap, (_mindist_bbox((qx, qy), child.bbox), counter, child)
                )
        return sorted((-negd, i) for negd, i in worst)

    def range_disk(self, q, radius: float, strict: bool = False) -> List[int]:
        """Indices of points within ``radius`` of ``q``.

        ``strict=True`` uses the open disk (``d < radius``).
        """
        out: List[int] = []
        qx, qy = float(q[0]), float(q[1])

        def visit(node: _Node) -> None:
            if _mindist_bbox((qx, qy), node.bbox) > radius:
                return
            if node.indices is not None:
                for i in node.indices:
                    px, py = self.points[i]
                    d = math.hypot(px - qx, py - qy)
                    if (d < radius) if strict else (d <= radius):
                        out.append(i)
                return
            visit(node.left)
            visit(node.right)

        visit(self.root)
        return out

    def report_weighted_below(self, q, bound: float, strict: bool = True) -> List[int]:
        """All ``i`` with ``d(q, p_i) - w_i < bound`` (stage 2 report).

        With ``w_i = r_i`` and ``bound = Delta(q)`` this reports exactly
        ``NN!=0(q)`` by Lemma 2.1 / Eq. (4): the disks whose minimum
        distance to ``q`` is below the envelope value.  Subtrees with
        ``mindist(q, bbox) - max_w >= bound`` cannot contain output.
        """
        out: List[int] = []
        qx, qy = float(q[0]), float(q[1])

        def visit(node: _Node) -> None:
            if _mindist_bbox((qx, qy), node.bbox) - node.max_w >= bound:
                return
            if node.indices is not None:
                for i in node.indices:
                    px, py = self.points[i]
                    d = math.hypot(px - qx, py - qy) - self.weights[i]
                    if (d < bound) if strict else (d <= bound):
                        out.append(i)
                return
            visit(node.left)
            visit(node.right)

        visit(self.root)
        return out
