"""Exception hierarchy for the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GeometryError(ReproError):
    """Raised when a geometric computation receives invalid input."""


class DegenerateInputError(GeometryError):
    """Raised on degenerate input a routine cannot handle (e.g. collinear
    points handed to a circumcircle computation)."""


class EmptyIndexError(ReproError):
    """Raised when querying an index built over an empty data set."""


class DistributionError(ReproError):
    """Raised when an uncertain-point distribution is malformed
    (e.g. weights that do not sum to one)."""


class QueryError(ReproError, ValueError):
    """Raised when query parameters are out of their documented range.

    Also a :class:`ValueError`, so callers that guarded batch entry
    points with ``except ValueError`` before the taxonomy existed keep
    working.
    """


class QueryTimeoutError(ReproError):
    """Raised when a query's cooperative deadline expires mid-execution.

    Attributes
    ----------
    site:
        The checkpoint site (e.g. ``"parallel.tile"``, ``"mc.round"``)
        that observed the expired deadline.
    deadline_s / elapsed_s:
        The configured budget and the wall-clock time actually spent.
    progress:
        Mapping of checkpoint site -> number of units completed before
        the timeout, i.e. the partial diagnostics of the aborted run.
    """

    def __init__(self, message, *, site=None, deadline_s=None,
                 elapsed_s=None, progress=None):
        super().__init__(message)
        self.site = site
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s
        self.progress = dict(progress or {})


class ResourceLimitError(ReproError):
    """Raised by admission control when a request's estimated working set
    exceeds ``EXECUTION.memory_budget_bytes``.

    Attributes
    ----------
    required_bytes / budget_bytes:
        The estimated allocation that tripped the limit and the
        configured budget.
    what:
        Human-readable description of the allocation (e.g.
        ``"expected_distance_matrix output (m=1000, n=2000)"``).
    """

    def __init__(self, message, *, required_bytes=None, budget_bytes=None,
                 what=None):
        super().__init__(message)
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes
        self.what = what


class SnapshotError(ReproError):
    """Raised when an engine snapshot cannot be written, read, or
    validated (bad magic, version mismatch, checksum failure,
    inconsistent arrays).

    Attributes
    ----------
    path:
        The snapshot file involved, when known.
    reason:
        Short machine-readable cause (``"checksum"``, ``"version"``,
        ``"magic"``, ``"truncated"``, ``"schema"``, ``"io"``).
    """

    def __init__(self, message, *, path=None, reason=None):
        super().__init__(message)
        self.path = str(path) if path is not None else None
        self.reason = reason


class WalError(ReproError):
    """Raised when a write-ahead log cannot be created, appended to, or
    rotated (closed log, I/O failure, base-generation mismatch between
    the log and its snapshot).  Mirrors the :class:`SnapshotError`
    pattern: diagnostics ride on the exception.

    Attributes
    ----------
    path:
        The log file involved, when known.
    reason:
        Short machine-readable cause (``"closed"``, ``"io"``,
        ``"base-generation"``, ``"magic"``, ``"version"``).
    """

    def __init__(self, message, *, path=None, reason=None):
        super().__init__(message)
        self.path = str(path) if path is not None else None
        self.reason = reason


class WalCorruptionError(WalError):
    """Raised when a write-ahead log holds a corrupted *interior*
    record — a CRC mismatch, an undecodable payload, or a generation
    sequence break before the final record.  (A damaged *final* record
    is a torn tail from a crash mid-append; recovery truncates it
    silently instead of raising.)

    Attributes
    ----------
    offset:
        Byte offset of the corrupted record's frame in the log file.
    """

    def __init__(self, message, *, path=None, reason=None, offset=None):
        super().__init__(message, path=path, reason=reason)
        self.offset = int(offset) if offset is not None else None


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.service` daemon
    layer (registry, request queue, HTTP front end)."""


class UnknownDatasetError(ServiceError, KeyError):
    """Raised when a request names a dataset the registry does not hold
    (HTTP 404).  Also a :class:`KeyError`, matching the mapping-style
    registry surface.

    Attributes
    ----------
    name:
        The dataset name that missed.
    """

    def __init__(self, message, *, name=None):
        super().__init__(message)
        self.name = name

    def __str__(self):  # KeyError would repr() the message
        return self.args[0]


class DatasetExistsError(ServiceError):
    """Raised when creating a dataset under a name already registered
    (HTTP 409); pass ``replace=True`` to overwrite deliberately."""

    def __init__(self, message, *, name=None):
        super().__init__(message)
        self.name = name


class QueueFullError(ServiceError):
    """Raised by request-queue admission when the queue already holds
    ``SERVICE.queue_depth`` pending requests (HTTP 429).

    Attributes
    ----------
    depth / limit:
        The depth observed at rejection and the configured bound.
    """

    def __init__(self, message, *, depth=None, limit=None):
        super().__init__(message)
        self.depth = depth
        self.limit = limit


class ServiceUnavailableError(ServiceError):
    """Raised when the service cannot accept work — draining for
    shutdown, or the queue/worker layer already closed (HTTP 503)."""


class PayloadTooLargeError(ServiceError):
    """Raised when a request body declares more bytes than
    ``SERVICE.max_body_bytes`` (HTTP 413) — rejected from the
    Content-Length header alone, before any of the body is buffered.

    Attributes
    ----------
    length / limit:
        The declared body size and the configured bound.
    """

    def __init__(self, message, *, length=None, limit=None):
        super().__init__(message)
        self.length = length
        self.limit = limit


class WorkerCrashError(ReproError):
    """Raised inside a parallel worker when a tile dies (injected or
    real).  ``map_tiles`` catches it, retries the tile serially, and
    records the recovery in the fault counters.

    Attributes
    ----------
    site:
        The checkpoint site where the crash fired.
    index:
        Index of the tile/work unit that crashed, when known.
    """

    def __init__(self, message, *, site=None, index=None):
        super().__init__(message)
        self.site = site
        self.index = index
