"""Exception hierarchy for the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GeometryError(ReproError):
    """Raised when a geometric computation receives invalid input."""


class DegenerateInputError(GeometryError):
    """Raised on degenerate input a routine cannot handle (e.g. collinear
    points handed to a circumcircle computation)."""


class EmptyIndexError(ReproError):
    """Raised when querying an index built over an empty data set."""


class DistributionError(ReproError):
    """Raised when an uncertain-point distribution is malformed
    (e.g. weights that do not sum to one)."""


class QueryError(ReproError):
    """Raised when query parameters are out of their documented range."""
