"""``repro.engine`` — the stateful dataset-session API.

The paper's whole premise is *preprocess an uncertain point set once,
then answer many queries fast*.  :class:`Engine` is the public form of
that contract: construct it once from a ``Sequence[UncertainPoint]`` and
it owns the :class:`repro.ModelColumns` SoA store plus a **lazy, keyed
index registry** — the :class:`repro.QueryPlanner`, the dual-tree
:class:`repro.EnvelopeObjectTree` behind the pruned tier (one per
generation, shared across batches and criteria),
:class:`repro.QuantizedEnvelopeIndex` per ``(eps, rel, criterion)``,
:class:`repro.ExpectedNNIndex`, spiral-search threshold structures, and
reusable Monte-Carlo sample blocks keyed by ``(s, seed)`` — so repeated
query batches never rebuild state the session already holds.  The
stateless :mod:`repro.batch` facade is, since PR 4, a thin wrapper over
a per-call throwaway ``Engine``; answers are bit-identical either way.

Quick start::

    import numpy as np
    from repro import Engine, QuerySpec, UniformDiskPoint

    points = [UniformDiskPoint((0, 0), 1), UniformDiskPoint((3, 0), 1)]
    engine = Engine(points)                 # build-once session
    Q = np.array([[1.4, 0.0], [2.0, 0.5]])

    engine.expected_nn_many(Q)              # winners + values
    engine.nonzero_nn_many(Q)               # Lemma 2.1 sets
    res = engine.query(Q, QuerySpec("expected_nn", tier="approx", eps=0.5))
    res.answers, res.values, res.fallback   # structured QueryResult

    engine.insert([UniformDiskPoint((9, 9), 1)])   # dynamic updates
    engine.remove([0])
    engine.stats()                          # registry / cache telemetry

Queries are **declarative**: a frozen :class:`QuerySpec` names the
method (``expected_nn`` / ``nonzero`` / ``threshold`` / ``expected_knn``
/ ``mc_pnn``), the tier (``exact`` / ``pruned`` / ``approx`` with
``eps`` / ``rel``), the method parameters (``k``, ``tau``, Monte-Carlo
``s`` / ``epsilon`` / ``seed`` / ``adaptive`` / ``tol``), an optional
candidate ``subset`` mask, and per-query execution overrides
(``tile_bytes`` / ``parallel_backend`` / ``parallel_workers``).  The
engine compiles the spec against its registry into an execution plan
and returns a structured :class:`QueryResult` — answers, values,
per-row certificate / fallback masks, timing, and (opt-in)
candidates-pruned diagnostics.

Dynamic updates are **generation-tagged**: every registry entry is
stamped with the generation it was built at, and :meth:`Engine.insert`
/ :meth:`Engine.remove` bump the generation so stale indexes miss
lazily (rebuilt on the next query of that key, never eagerly).  The
column store follows an incremental policy instead: inserts append
freshly summarised columns in place (:meth:`repro.ModelColumns.extend`)
and removals shrink them (:meth:`~repro.ModelColumns.shrink`), so the
objects already summarised are never reprocessed.

Repeated identical batches (the hot-query serving pattern) are served
from a bounded, generation-tagged **result cache** keyed by the spec
and a digest of the query matrix — the second serving of a hot batch
costs a hash lookup instead of an evaluation pass.  Seeded Monte-Carlo
answers are deterministic and participate; unseeded ones
(``seed=None`` or a live Generator) are never cached.
"""

from __future__ import annotations

import contextlib
import copy
import dataclasses
import functools
import hashlib
import os
import time
from collections import Counter, OrderedDict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from . import io as _io
from .config import (
    DURABILITY as _DURABILITY,
    EXECUTION as _EXECUTION,
    SeedLike,
    default_rng,
    execution as _execution_ctx,
)
from .core.expected_nn import ExpectedNNIndex
from .core.knn import (
    expected_knn_many as _expected_knn_many,
    monte_carlo_knn_many as _monte_carlo_knn_many,
)
from .core.monte_carlo import MonteCarloPNN, rounds_for_fixed_query
from .core.nonzero import UncertainSet
from .core.planner import QueryPlanner
from .core.spiral import SpiralSearchPNN
from .core.threshold import (
    ApproxThresholdIndex,
    ThresholdAnswer,
    threshold_nn_exact_many as _threshold_nn_exact_many,
)
from .core import parallel as _parallel
from .errors import QueryError, QueryTimeoutError, WalCorruptionError, WalError
from .geometry.kernels import as_query_array
from .resilience import admission as _admission
from .resilience import deadline as _deadline
from .resilience import faults as _faults
from .resilience import snapshot as _snapshot
from .resilience import wal as _wal
from .uncertain.columns import ModelColumns, TAG_NAMES, model_tag

__all__ = ["Engine", "IndexRegistry", "QueryResult", "QuerySpec", "tier_of"]


def _exact_tile_worker(points_blob: str, method: str, Q, lo: int, hi: int):
    """One exact-tier row tile, evaluated self-contained in a process-pool
    worker.

    Module-level and picklable: the relation travels as :mod:`repro.io`
    JSON (IEEE doubles round-trip exactly), so the tile replays the very
    float sequence of the in-process exact path — the exact tier is
    row-independent, which makes this fan-out bit-identical by
    construction.
    """
    points = _io.loads(points_blob)
    sub = np.asarray(Q)[lo:hi]
    if method == "expected_nn":
        return ExpectedNNIndex(points).query_many(sub, exact=True)
    # nonzero
    return UncertainSet(points).nonzero_nn_many(sub)

_METHODS = ("expected_nn", "nonzero", "threshold", "expected_knn", "mc_pnn")
_TIERS = ("exact", "pruned", "approx")
#: Per-family LRU caps on registry entries whose keys embed
#: user-supplied values — without a bound, a long-lived serving session
#: issuing per-request seeds / eps values / candidate masks would grow
#: one (potentially multi-MB) cached structure per distinct value
#: forever.  Sample blocks and their MonteCarloPNN wrappers share a key
#: suffix and are touched together, so they evict roughly in pairs.
_FAMILY_LIMITS = {
    "samples": 4,
    "mc_pnn": 4,
    "quant": 8,
    "subset": 8,
}
#: Methods served by the quantized-envelope approx tier.
_APPROX_METHODS = ("expected_nn", "nonzero", "threshold")


def tier_of(exact: bool, eps: Optional[float]) -> str:
    """The tier named by the facade-style ``exact`` / ``eps`` knobs."""
    if eps is not None and exact:
        raise ValueError(
            "exact=True and eps= are contradictory; pick one tier"
        )
    if eps is not None:
        return "approx"
    return "exact" if exact else "pruned"


def _seed_key(seed: SeedLike) -> Optional[int]:
    """A hashable cache key for a seed-like value, or ``None`` when the
    draw is not reproducible from the value (live generators, entropy
    seeds) and therefore must never be cached."""
    if isinstance(seed, bool):
        return None
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return None


@dataclasses.dataclass(frozen=True)
class QuerySpec:
    """A declarative description of one batched query.

    Parameters
    ----------
    method:
        ``"expected_nn"`` | ``"nonzero"`` | ``"threshold"`` |
        ``"expected_knn"`` | ``"mc_pnn"``.
    tier:
        ``"pruned"`` (default, prune-then-evaluate), ``"exact"``
        (unpruned cross-check tier), or ``"approx"`` (the quantized
        envelope; requires ``eps``).
    eps / rel:
        Certification budget of the approx tier (``max(eps, rel *
        dist)``).
    k:
        Neighbor count for ``expected_knn``.
    tau:
        Probability threshold in ``[0, 1)`` for ``threshold``.
    s / epsilon / delta / seed / adaptive / tol:
        Monte-Carlo controls for ``mc_pnn`` (``s`` rounds or the
        Chernoff pair ``epsilon`` / ``delta``; ``seed`` keys the shared
        sample block; ``adaptive`` + ``tol`` turn on empirical-Bernstein
        early stopping).
    subset:
        Optional candidate mask — a boolean mask of length ``n`` or a
        sequence of object indices; the query runs against exactly that
        sub-dataset (answers are reported in the full dataset's index
        space).
    tile_bytes / parallel_backend / parallel_workers:
        Per-query overrides of :data:`repro.config.EXECUTION`.
    diagnostics:
        Collect candidates-pruned statistics into
        :attr:`QueryResult.diagnostics` (costs an extra bound pass).
    deadline_s:
        Optional cooperative wall-clock budget for this batch.  Checked
        at tile/chunk boundaries across the stack; expiry raises
        :class:`repro.errors.QueryTimeoutError` (``on_deadline="raise"``)
        or degrades the unfinished rows (``"degrade"``).  Deadline
        queries are never served from (or stored in) the result cache.
    on_deadline:
        ``"raise"`` (default) or ``"degrade"``.  Degradation re-plans
        the rows not finished in time on the approx tier and returns a
        complete :class:`QueryResult` whose :attr:`QueryResult.degraded`
        mask and certificate mark those rows honestly.  Only methods
        with an approx tier (``expected_nn`` / ``nonzero`` /
        ``threshold``) can degrade.
    degrade_eps:
        Certification budget used for degraded rows (default: 1% of the
        dataset's bounding-box diagonal, or ``10 * eps`` when the query
        already runs on the approx tier).
    """

    method: str
    tier: str = "pruned"
    eps: Optional[float] = None
    rel: float = 0.0
    k: Optional[int] = None
    tau: Optional[float] = None
    s: Optional[int] = None
    epsilon: Optional[float] = None
    delta: float = 0.05
    seed: SeedLike = 0
    adaptive: bool = False
    tol: Optional[float] = None
    subset: Optional[Tuple[int, ...]] = None
    tile_bytes: Optional[int] = None
    parallel_backend: Optional[str] = None
    parallel_workers: Optional[int] = None
    diagnostics: bool = False
    deadline_s: Optional[float] = None
    on_deadline: str = "raise"
    degrade_eps: Optional[float] = None

    def __post_init__(self):
        if self.method not in _METHODS:
            raise QueryError(
                f"unknown query method {self.method!r}; expected {_METHODS}"
            )
        if self.tier not in _TIERS:
            raise QueryError(
                f"unknown planner tier {self.tier!r}; expected {_TIERS}"
            )
        if self.tier == "approx":
            if self.method not in _APPROX_METHODS:
                raise QueryError(
                    f"{self.method} has no approx tier"
                )
            if self.eps is None:
                raise QueryError("the approx tier requires eps")
            if not (float(self.eps) > 0.0):
                raise QueryError("eps must be positive")
        elif self.eps is not None:
            raise QueryError("eps= requires tier='approx'")
        if self.rel < 0.0:
            raise QueryError("rel must be non-negative")
        if self.method == "expected_knn":
            if self.k is None or int(self.k) < 1:
                raise QueryError("expected_knn requires k >= 1")
        if self.method == "threshold":
            if self.tau is None or not 0.0 <= float(self.tau) < 1.0:
                raise QueryError("tau must lie in [0, 1)")
        if self.method == "mc_pnn":
            if self.s is None and self.epsilon is None:
                raise QueryError("provide either s or epsilon")
            if self.adaptive and (self.tol is None or not self.tol > 0.0):
                raise QueryError("adaptive stopping requires tol > 0")
        if self.deadline_s is not None and not float(self.deadline_s) > 0.0:
            raise QueryError("deadline_s must be positive")
        if self.on_deadline not in ("raise", "degrade"):
            raise QueryError(
                f"on_deadline must be 'raise' or 'degrade', "
                f"got {self.on_deadline!r}"
            )
        if self.on_deadline == "degrade" and self.method not in _APPROX_METHODS:
            raise QueryError(
                f"{self.method} has no approx tier to degrade onto; "
                f"use on_deadline='raise'"
            )
        if self.degrade_eps is not None and not float(self.degrade_eps) > 0.0:
            raise QueryError("degrade_eps must be positive")
        if self.subset is not None:
            mask_len = None
            sub = np.atleast_1d(np.asarray(self.subset))
            if sub.ndim != 1:
                raise QueryError("subset must be a 1-D mask or index list")
            if sub.dtype == bool:
                # The dataset size is unknown here; remember the mask
                # length so the engine can reject a mask built against
                # a different dataset instead of misreading it.
                mask_len = sub.shape[0]
                sub = np.flatnonzero(sub)
            elif sub.size and not np.issubdtype(sub.dtype, np.integer):
                raise QueryError(
                    "subset indices must be integers (or a boolean mask)"
                )
            sub = np.unique(sub.astype(np.intp))
            if sub.size and sub[0] < 0:
                raise QueryError("subset indices must be non-negative")
            object.__setattr__(self, "subset", tuple(int(i) for i in sub))
            object.__setattr__(self, "_subset_mask_len", mask_len)

    # -- wire codecs ----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable dict of every spec field.

        The inverse of :meth:`from_dict`: ``QuerySpec.from_dict(spec.to_dict())
        == spec`` for every serializable spec.  Tuple-valued fields
        (``subset``) become lists; NumPy scalars become native numbers.
        Raises :class:`repro.errors.QueryError` when the spec cannot be
        represented on the wire (a live ``seed`` generator — its stream
        state is not a value).
        """
        if self.seed is not None and _seed_key(self.seed) is None:
            raise QueryError(
                "QuerySpec.to_dict requires an int (or None) seed; live "
                "generator state cannot be serialized"
            )
        out: Dict[str, object] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, np.integer):
                value = int(value)
            elif isinstance(value, np.floating):
                value = float(value)
            elif isinstance(value, np.bool_):
                value = bool(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data) -> "QuerySpec":
        """Build a :class:`QuerySpec` from :meth:`to_dict` output.

        Unknown keys are rejected with :class:`repro.errors.QueryError`
        (a wire payload naming fields this version does not know is a
        schema mismatch, not something to silently drop), and every
        known field goes through the constructor's full validation.
        """
        if not isinstance(data, dict):
            raise QueryError(
                f"QuerySpec encoding must be a JSON object, "
                f"got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise QueryError(f"unknown QuerySpec fields: {unknown}")
        if "method" not in data:
            raise QueryError("QuerySpec encoding requires 'method'")
        return cls(**data)

    # -- caching -------------------------------------------------------------
    def cache_key(self) -> Optional[tuple]:
        """Hashable identity of everything that can change the returned
        result, or ``None`` when the spec is inherently uncacheable
        (unseeded randomness).  Execution overrides are excluded (they
        never change answer bits); ``diagnostics`` is included because
        it changes the result's payload."""
        if self.deadline_s is not None:
            # What completes before a wall-clock deadline is inherently
            # non-deterministic; such results must never be replayed.
            return None
        if self.method == "mc_pnn":
            seed = _seed_key(self.seed)
            if seed is None:
                return None
        else:
            seed = None
        return (
            self.method,
            self.tier,
            self.eps,
            self.rel,
            self.k,
            self.tau,
            self.s,
            self.epsilon,
            self.delta,
            seed,
            self.adaptive,
            self.tol,
            self.subset,
            self.diagnostics,
        )


@dataclasses.dataclass
class QueryResult:
    """Structured answer batch returned by :meth:`Engine.query`.

    ``answers`` is the method's primary payload: winner indices
    (``expected_nn``), per-row ``NN!=0`` frozensets (``nonzero``),
    ``{index: probability}`` dicts (``threshold`` / ``mc_pnn``), or the
    ``(m, k)`` ranking matrix (``expected_knn``).  ``values`` carries
    the expected distances for ``expected_nn``; ``fallback`` /
    ``certificate`` are the approx tier's per-row exactness mask and
    certified error budget.  ``degraded`` (deadline queries under
    ``on_deadline="degrade"`` only) marks the rows that were re-planned
    on the approx tier after the deadline expired.  ``plan`` records
    the compiled route and the registry keys it touched;
    ``diagnostics`` holds timing plus the opt-in candidates-pruned
    statistics.
    """

    spec: QuerySpec
    answers: object
    values: Optional[np.ndarray] = None
    fallback: Optional[np.ndarray] = None
    certificate: Optional[np.ndarray] = None
    degraded: Optional[np.ndarray] = None
    m: int = 0
    n: int = 0
    generation: int = 0
    elapsed: float = 0.0
    cached: bool = False
    plan: Dict[str, object] = dataclasses.field(default_factory=dict)
    diagnostics: Dict[str, float] = dataclasses.field(default_factory=dict)

    def _replica(self, elapsed: float) -> "QueryResult":
        """A cache-hit copy with fresh containers, so callers can mutate
        what they receive without corrupting the cached original."""

        def dup(payload):
            if isinstance(payload, np.ndarray):
                return payload.copy()
            if isinstance(payload, list):
                return [
                    dict(row) if isinstance(row, dict) else row
                    for row in payload
                ]
            return payload

        return dataclasses.replace(
            self,
            answers=dup(self.answers),
            values=dup(self.values),
            fallback=dup(self.fallback),
            certificate=dup(self.certificate),
            degraded=dup(self.degraded),
            elapsed=elapsed,
            cached=True,
            plan=copy.deepcopy(self.plan),
            diagnostics=dict(self.diagnostics),
        )


class IndexRegistry:
    """Generation-tagged cache of the session's built structures.

    Every entry is stamped with the :class:`Engine` generation it was
    built at; a lookup only hits when the tags match, so
    insert/remove invalidation is lazy — stale structures are simply
    never returned again and are rebuilt on the next query of their
    key.  ``builds`` / ``hits`` count real constructions vs cache
    returns (the instrumentation the engine tests assert on).
    """

    def __init__(self):
        self._entries: Dict[tuple, Tuple[int, object]] = {}
        self.builds = 0
        self.hits = 0

    def get(self, key: tuple, generation: int, builder):
        entry = self._entries.get(key)
        if entry is not None and entry[0] == generation:
            self.hits += 1
            return entry[1]
        value = builder()
        self._entries[key] = (generation, value)
        self.builds += 1
        return value

    def peek(self, key: tuple, generation: int):
        """The cached value if present *and current*, else ``None``
        (no instrumentation, no build)."""
        entry = self._entries.get(key)
        if entry is not None and entry[0] == generation:
            return entry[1]
        return None

    def put(self, key: tuple, generation: int, value) -> None:
        self._entries[key] = (generation, value)

    def drop(self, key: tuple) -> None:
        self._entries.pop(key, None)

    def keys(self, generation: Optional[int] = None) -> List[tuple]:
        """All cached keys, or only the live ones for a generation."""
        return sorted(
            (
                k
                for k, (g, _) in self._entries.items()
                if generation is None or g == generation
            ),
            key=repr,
        )

    def sweep(self, generation: int) -> int:
        """Drop every stale entry; returns how many were evicted."""
        stale = [
            k for k, (g, _) in self._entries.items() if g != generation
        ]
        for k in stale:
            del self._entries[k]
        return len(stale)

    def memory_bytes(
        self,
        generation: Optional[int] = None,
        exclude: Tuple[str, ...] = (),
    ) -> int:
        """Approximate footprint of the (live) cached structures — sums
        each value's ``nbytes`` where it reports one.  ``exclude`` names
        key prefixes to skip (the engine excludes ``"mc_pnn"`` wrappers,
        whose block is already counted under its ``"samples"`` key)."""
        total = 0
        for key, (g, value) in self._entries.items():
            if generation is not None and g != generation:
                continue
            if key and key[0] in exclude:
                continue
            nbytes = getattr(value, "nbytes", 0)
            if isinstance(nbytes, (int, np.integer)):
                total += int(nbytes)
        return total


class _QuantCacheView:
    """The mutable-mapping face :class:`repro.QueryPlanner` expects for
    its approx cache, backed by the engine so quantized envelopes built
    through the planner land under the session's
    ``("quant", eps, rel, criterion)`` keys (counting as registry
    builds/hits and participating in the per-family LRU)."""

    __slots__ = ("_engine", "_generation")

    def __init__(self, engine: "Engine", generation: int):
        self._engine = engine
        self._generation = generation

    def __getitem__(self, key):
        full = ("quant",) + tuple(key)
        value = self._engine._registry.peek(full, self._generation)
        if value is None:
            raise KeyError(key)
        self._engine._registry.hits += 1
        self._engine._touch(full)
        return value

    def __setitem__(self, key, value) -> None:
        full = ("quant",) + tuple(key)
        self._engine._registry.put(full, self._generation, value)
        self._engine._registry.builds += 1
        self._engine._touch(full)


def _key_label(key: tuple) -> str:
    """Human-readable registry key for stats()/repr."""
    name, rest = key[0], key[1:]
    if name == "subset":
        return f"subset[{len(rest[0])}]"
    if not rest:
        return str(name)
    return f"{name}[{', '.join(str(p) for p in rest)}]"


class Engine:
    """A build-once, query-many session over an uncertain point set.

    Parameters
    ----------
    points:
        The uncertain points (any mix of models; may be empty — an
        empty session answers every query with well-shaped empty
        results and grows via :meth:`insert`).
    result_cache_size:
        Maximum number of hot query batches memoised per session
        (``0`` disables result caching; index caching is unaffected).

    All structures are built lazily on first use and cached in the
    :class:`IndexRegistry`; :meth:`insert` / :meth:`remove` bump the
    generation counter, append/shrink the column store in place, and
    leave every other index to rebuild lazily on its next query.
    """

    def __init__(
        self,
        points: Sequence = (),
        result_cache_size: int = 32,
    ):
        self._points: List = list(points)
        self._generation = 0
        self._registry = IndexRegistry()
        self._result_cache: "OrderedDict[tuple, QueryResult]" = OrderedDict()
        self._result_cache_size = int(result_cache_size)
        self._result_hits = 0
        self._result_misses = 0
        self._family_lru: Dict[str, "OrderedDict[tuple, None]"] = {}
        # Per-engine fault/recovery counters: every query runs under a
        # collecting scope, so two engines working concurrently never
        # cross-contaminate each other's stats()["faults"].
        self._fault_stats = _faults.FaultStats()
        # Durable mode (attached by open_durable): the write-ahead log
        # every mutation appends to before it is acknowledged.
        self._wal: Optional[_wal.WriteAheadLog] = None
        self._wal_dir: Optional[str] = None
        self._wal_replayed = 0

    # -- basic introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    @property
    def n(self) -> int:
        return len(self._points)

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def points(self) -> List:
        """A copy of the current point list (the engine's own list is
        rebound, never mutated, on updates)."""
        return list(self._points)

    @property
    def registry(self) -> IndexRegistry:
        return self._registry

    # -- registry-backed structures ------------------------------------------
    def _require_points(self) -> None:
        if not self._points:
            raise QueryError("this operation requires a non-empty engine")

    def _touch(self, key: tuple) -> None:
        """Record use of a value-keyed registry entry and evict the
        least-recently-used entries of its family beyond the cap."""
        limit = _FAMILY_LIMITS.get(key[0])
        if limit is None:
            return
        lru = self._family_lru.setdefault(key[0], OrderedDict())
        lru[key] = None
        lru.move_to_end(key)
        while len(lru) > limit:
            evicted, _ = lru.popitem(last=False)
            self._registry.drop(evicted)

    def uset(self) -> UncertainSet:
        """The session's shared :class:`repro.UncertainSet` view."""
        self._require_points()
        return self._registry.get(
            ("uset",),
            self._generation,
            lambda: UncertainSet(self._points, copy=False),
        )

    def columns(self) -> ModelColumns:
        """The session's SoA column store (built once, then appended /
        shrunk in place by dynamic updates)."""
        self._require_points()
        return self._registry.get(
            ("columns",),
            self._generation,
            lambda: ModelColumns(self._points),
        )

    def planner(self) -> QueryPlanner:
        """The session's three-tier :class:`repro.QueryPlanner` (its
        approx cache is a registry view and its dual-tree object tree a
        registry entry, so both are session-owned)."""
        self._require_points()
        generation = self._generation

        def object_tree_supplier(build):
            # Lazily built on the planner's first dual prune pass and
            # cached under ("dual_tree",): one object-envelope tree per
            # generation, reused across batches and across the
            # expected / support criteria (the tree depends only on the
            # column store).
            return self._registry.get(("dual_tree",), generation, build)

        def eval_cache_supplier(build):
            # Same ownership pattern for the grouped evaluator's
            # precomputations: one EvalCache per generation, hit by
            # every grouped kernel pass of every batch.
            return self._registry.get(("eval_cache",), generation, build)

        return self._registry.get(
            ("planner",),
            self._generation,
            lambda: QueryPlanner(
                self._points,
                columns=self.columns(),
                approx_cache=_QuantCacheView(self, self._generation),
                object_tree_supplier=object_tree_supplier,
                eval_cache_supplier=eval_cache_supplier,
            ),
        )

    def object_tree(self):
        """The session's dual-tree
        :class:`~repro.core.dual_tree.EnvelopeObjectTree` (built at most
        once per generation; every pruned-tier query of any criterion
        reuses it)."""
        self._require_points()
        return self.planner().object_tree()

    def expected_index(self) -> ExpectedNNIndex:
        """The session's :class:`repro.ExpectedNNIndex`, sharing the
        registry's uset.  The engine's answer paths drive the pruned
        tier through :meth:`planner` directly, so no planner (or column
        store) is built here — the exact cross-check tier stays as cheap
        as the pre-session facade."""
        self._require_points()
        return self._registry.get(
            ("expected_nn",),
            self._generation,
            lambda: ExpectedNNIndex(self._points, uset=self.uset()),
        )

    def quantized_index(
        self, eps: float, criterion: str = "expected", rel: float = 0.0
    ):
        """The session's :class:`repro.QuantizedEnvelopeIndex` for one
        ``(eps, rel, criterion)`` key — the same object the approx tier
        uses, built at most once per key and generation."""
        self._require_points()
        return self.planner().approx_index(eps, rel, criterion)

    def sample_block(self, s: int, seed: SeedLike) -> np.ndarray:
        """The shared ``(s, n, 2)`` Monte-Carlo instantiation block for
        one ``(s, seed)`` key.  Reproducible (int) seeds are cached and
        reused across the PNN and kNN estimators; unseeded draws are
        taken fresh each call."""
        self._require_points()
        key = _seed_key(seed)
        if key is None:
            return self.uset().instantiate_many(default_rng(seed), int(s))
        full = ("samples", int(s), key)
        block = self._registry.get(
            full,
            self._generation,
            lambda: self.uset().instantiate_many(
                default_rng(key), int(s)
            ),
        )
        self._touch(full)
        return block

    def monte_carlo_index(
        self,
        s: Optional[int] = None,
        epsilon: Optional[float] = None,
        delta: float = 0.05,
        seed: SeedLike = 0,
    ) -> MonteCarloPNN:
        """The session's :class:`repro.MonteCarloPNN` over the shared
        sample block for ``(s, seed)`` (uncacheable seeds build a fresh
        structure with the live generator, matching the stateless
        facade's semantics)."""
        self._require_points()
        n = len(self._points)
        if s is None:
            if epsilon is None:
                raise QueryError("provide either s or epsilon")
            s_eff = rounds_for_fixed_query(epsilon, delta, n)
        else:
            s_eff = int(s)
        key = _seed_key(seed)
        if key is None:
            return MonteCarloPNN(
                self._points,
                s=s,
                epsilon=epsilon,
                delta=delta,
                rng=default_rng(seed),
                uset=self.uset(),
            )
        block = self.sample_block(s_eff, key)
        full = ("mc_pnn", s_eff, key)
        mc = self._registry.get(
            full,
            self._generation,
            lambda: MonteCarloPNN(
                self._points,
                s=s_eff,
                epsilon=epsilon,
                delta=delta,
                samples=block,
                uset=self.uset(),
            ),
        )
        self._touch(full)
        return mc

    def spiral_threshold_index(self) -> ApproxThresholdIndex:
        """The session's spiral-search threshold structure."""
        self._require_points()
        spiral = self._registry.get(
            ("spiral",),
            self._generation,
            lambda: SpiralSearchPNN(self._points),
        )
        return self._registry.get(
            ("spiral_threshold",),
            self._generation,
            lambda: ApproxThresholdIndex(self._points, spiral=spiral),
        )

    # -- dynamic updates -----------------------------------------------------
    def insert(self, points: Sequence) -> "Engine":
        """Append uncertain points to the session.

        The column store is extended **in place** (only the new points
        are summarised); every other cached index goes stale via the
        generation bump and is rebuilt lazily on its next query.  The
        new points take the indices ``n .. n + len(points) - 1``.
        """
        new = list(points)
        if not new:
            return self
        if self._wal is not None:
            # Durable mode: append-then-ack.  Serialising the points
            # also validates them — a point the WAL could not replay is
            # rejected here, before any state changes.
            self._wal.append(
                "insert",
                {"points": _io.points_to_wire(new)},
                generation=self._generation + 1,
            )
        cols = self._registry.peek(("columns",), self._generation)
        self._points = self._points + new  # rebind: shared views stay valid
        self._generation += 1
        if cols is not None:
            # Incremental append on a shallow clone: extend() rebinds the
            # column arrays (it never mutates them), so cloning the shell
            # keeps any previously handed-out planner/index consistent
            # while still summarising only the new points.
            self._registry.put(
                ("columns",), self._generation, copy.copy(cols).extend(new)
            )
        self._registry.sweep(self._generation)  # free superseded indexes
        self._result_cache.clear()
        self._family_lru.clear()
        self._maybe_compact()
        return self

    def remove(self, ids) -> "Engine":
        """Remove the points at the given indices (current positions;
        an int, an index sequence, or a boolean mask of length ``n``).

        Remaining points are re-indexed compactly in order, exactly as
        if the engine had been rebuilt from the surviving points.  The
        column store is shrunk in place; other indexes rebuild lazily.
        Removing down to an empty dataset is allowed — subsequent
        queries return well-shaped empty results.
        """
        n = len(self._points)
        ids_arr = np.atleast_1d(np.asarray(ids))
        if ids_arr.dtype == bool:
            if ids_arr.shape != (n,):
                raise QueryError(
                    f"boolean remove mask must have length {n}"
                )
            ids_arr = np.flatnonzero(ids_arr)
        elif ids_arr.size and not np.issubdtype(ids_arr.dtype, np.integer):
            raise QueryError(
                "remove indices must be integers (or a boolean mask)"
            )
        ids_arr = np.unique(ids_arr.astype(np.intp))
        if ids_arr.size == 0:
            return self
        if ids_arr[0] < 0 or ids_arr[-1] >= n:
            raise QueryError(f"remove indices must lie in [0, {n})")
        if self._wal is not None:
            # Durable mode: validation is done, log before mutating.
            self._wal.append(
                "remove",
                {"ids": [int(i) for i in ids_arr]},
                generation=self._generation + 1,
            )
        keep = np.setdiff1d(np.arange(n, dtype=np.intp), ids_arr)
        cols = self._registry.peek(("columns",), self._generation)
        self._points = [self._points[i] for i in keep]
        self._generation += 1
        if cols is not None:
            if keep.size:
                # Clone-then-shrink for the same reason insert clones:
                # stale holders of the old columns keep their old arrays.
                self._registry.put(
                    ("columns",),
                    self._generation,
                    copy.copy(cols).shrink(keep),
                )
            else:
                self._registry.drop(("columns",))
        self._registry.sweep(self._generation)  # free superseded indexes
        self._result_cache.clear()
        self._family_lru.clear()
        self._maybe_compact()
        return self

    def replace_points(self, points: Sequence) -> "Engine":
        """Replace the entire relation in one mutation (generation
        bump; every cached structure rebuilds lazily).

        The whole-relation form of :meth:`insert` / :meth:`remove`:
        one atomic, WAL-logged ``replace`` record in durable mode, so a
        dataset reload survives a crash as either the old relation or
        the new one — never a mix.
        """
        new = list(points)
        if self._wal is not None:
            self._wal.append(
                "replace",
                {"points": _io.points_to_wire(new)},
                generation=self._generation + 1,
            )
        self._points = new
        self._generation += 1
        self._registry.sweep(self._generation)  # all entries superseded
        self._result_cache.clear()
        self._family_lru.clear()
        self._maybe_compact()
        return self

    # -- snapshot / restore ---------------------------------------------------
    def save(self, path: str) -> str:
        """Write a versioned snapshot of this session to ``path``.

        The snapshot holds the uncertain relation (exact JSON
        round-trip) plus the summarised column store, with a checksum
        and a manifest of the indexes built at save time; the write is
        atomic.  See :mod:`repro.resilience.snapshot`.
        """
        return _snapshot.save_engine(self, path)

    @classmethod
    def load(cls, path: str, result_cache_size: int = 32) -> "Engine":
        """Restore a session saved with :meth:`save`.

        The restored engine answers bit-identically to the saved one;
        indexes rebuild lazily on first use.  Corrupted, truncated, or
        version-mismatched snapshots raise
        :class:`repro.errors.SnapshotError`.
        """
        return _snapshot.load_engine(
            path, result_cache_size=result_cache_size
        )

    # -- durability (write-ahead logging) -------------------------------------

    #: Fixed file names inside a durable directory.
    SNAPSHOT_NAME = "snapshot.npz"
    WAL_NAME = "wal.log"

    @classmethod
    def open_durable(
        cls,
        directory: str,
        points: Optional[Sequence] = None,
        *,
        result_cache_size: int = 32,
        fsync: Optional[str] = None,
    ) -> "Engine":
        """Open a crash-consistent durable session rooted at
        ``directory``.

        The directory holds two files: ``snapshot.npz`` (the latest
        compacted base state, written with :meth:`save`'s atomic
        fsync-rename discipline) and ``wal.log`` (the write-ahead log
        of every mutation since).  Every :meth:`insert` /
        :meth:`remove` / :meth:`replace_points` appends to the log
        *before* it returns — an acknowledged mutation survives
        ``kill -9`` at any instruction (and power loss, under
        ``config.DURABILITY.fsync = "always"``).

        A fresh directory starts a new session from ``points`` (or
        empty).  An existing directory **recovers**: the snapshot is
        loaded, a torn final log record (crash mid-append) is truncated
        away, the surviving records are replayed, and the resulting
        engine is bit-identical to the pre-crash engine that
        acknowledged exactly those mutations — same columns, same
        generation, same query answers.  Passing ``points`` for an
        existing directory is an error (it would silently shadow
        recovered state).

        ``fsync`` overrides the global durability policy for this
        session's log; the log auto-compacts (snapshot-then-truncate)
        past ``config.DURABILITY.compact_bytes`` / ``compact_records``.
        """
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        snap_path = os.path.join(directory, cls.SNAPSHOT_NAME)
        wal_path = os.path.join(directory, cls.WAL_NAME)
        existing = os.path.exists(snap_path) or os.path.exists(wal_path)
        if existing and points is not None:
            raise QueryError(
                f"durable directory {directory!r} already holds an "
                f"engine; open it without points= (or remove the "
                f"directory to start over)"
            )
        if os.path.exists(snap_path):
            engine = cls.load(snap_path, result_cache_size=result_cache_size)
        else:
            engine = cls(
                list(points) if points is not None else [],
                result_cache_size=result_cache_size,
            )
            if len(engine):
                # Establish the base immediately: recovery of a fresh
                # durable dataset must not depend on replaying a giant
                # bootstrap record forever.
                _snapshot.save_engine(engine, snap_path)
        wal = _wal.WriteAheadLog.open(
            wal_path,
            base_generation=engine.generation,
            base_n=len(engine),
            fsync=fsync,
        )
        try:
            base = wal.base_generation
            if base is not None and base > engine._generation:
                raise WalError(
                    f"WAL {wal_path!r} is based on generation {base} but "
                    f"the snapshot holds generation {engine._generation} "
                    f"— the snapshot was replaced with an older one; "
                    f"refusing to replay over it",
                    path=wal_path, reason="base-generation",
                )
            engine._replay_wal(wal.records, wal_path)
        except BaseException:
            wal.close()
            raise
        engine._wal = wal
        engine._wal_dir = directory
        return engine

    def _replay_wal(self, records, wal_path: str) -> None:
        """Apply the log's surviving records on top of the loaded
        snapshot.

        Records whose generation the snapshot already covers are
        skipped (that is what makes a crash between snapshot publish
        and log rotation harmless).  Runs of consecutive ``insert``
        records are applied as one batched insert — per-point column
        summaries are independent, so the result is bit-identical to
        one-at-a-time application — and the generation counter is then
        pinned to the last record's stamp.
        """
        gen = self._generation
        pending: List = []

        def flush(target_gen: int) -> None:
            nonlocal pending
            if not pending:
                return
            self.insert(pending)  # _wal is still None: no re-append
            pending = []
            self._pin_generation(target_gen)

        for rec in records:
            if rec.op == "snapshot-marker":
                continue  # base validated by the caller
            if rec.gen <= gen and not pending:
                continue  # already folded into the snapshot
            if rec.gen != gen + 1:
                raise WalCorruptionError(
                    f"WAL record at offset {rec.offset} jumps from "
                    f"generation {gen} to {rec.gen}; the log is not a "
                    f"contiguous mutation history",
                    path=wal_path, reason="generation", offset=rec.offset,
                )
            gen = rec.gen
            self._wal_replayed += 1
            if rec.op == "insert":
                pending.extend(_io.points_from_wire(rec.payload["points"]))
                continue
            flush(gen - 1)
            if rec.op == "remove":
                self.remove([int(i) for i in rec.payload["ids"]])
            else:  # replace
                self.replace_points(
                    _io.points_from_wire(rec.payload["points"])
                )
            self._pin_generation(gen)
        flush(gen)

    def _pin_generation(self, generation: int) -> None:
        """Move the generation counter to ``generation``, carrying the
        live column store with it (replay applies several log records
        through one in-memory mutation; the counter must still land on
        the last record's stamp so recovery reproduces the pre-crash
        engine exactly)."""
        if generation == self._generation:
            return
        if generation < self._generation:
            raise WalError(
                "generation counter can only move forward",
                reason="base-generation",
            )
        cols = self._registry.peek(("columns",), self._generation)
        self._generation = generation
        if cols is not None:
            self._registry.put(("columns",), generation, cols)
        self._registry.sweep(generation)

    def _maybe_compact(self) -> None:
        """Snapshot-then-truncate once the log outgrows the configured
        bounds (no-op for non-durable sessions)."""
        wal = self._wal
        if wal is None:
            return
        if (
            wal.size_bytes >= _DURABILITY.compact_bytes
            or wal.record_count >= _DURABILITY.compact_records
        ):
            self.compact()

    def compact(self) -> str:
        """Force a log compaction: atomically publish a fresh snapshot
        of the current state, then rotate the write-ahead log down to a
        single ``snapshot-marker`` record.

        Safe against a crash at any point: the snapshot write is
        fsync-rename atomic, and until the rotated log is published the
        old log's records simply replay as no-ops against the new
        snapshot (their generations are already covered).  Returns the
        snapshot path.
        """
        if self._wal is None:
            raise QueryError(
                "compact() requires a durable session (Engine.open_durable)"
            )
        snap_path = os.path.join(self._wal_dir, self.SNAPSHOT_NAME)
        _snapshot.save_engine(self, snap_path)
        # Crash window: new snapshot + old log -> replay skips all.
        _faults.fire("wal.rotate", 0)
        self._wal.rotate(
            base_generation=self._generation, base_n=len(self._points)
        )
        return snap_path

    @property
    def durable(self) -> bool:
        """Whether this session is backed by a live write-ahead log."""
        return self._wal is not None and not self._wal.closed

    @property
    def durable_dir(self) -> Optional[str]:
        return self._wal_dir

    def close(self) -> None:
        """Release durable resources: fsync and close the write-ahead
        log (idempotent; a no-op for non-durable sessions).  Mutating a
        closed durable session raises :class:`repro.errors.WalError`
        instead of silently dropping durability."""
        if self._wal is not None:
            self._wal.close()

    # -- the declarative query surface ---------------------------------------
    def query(self, qs, spec: Optional[QuerySpec] = None, **spec_kwargs) -> QueryResult:
        """Execute one declarative query batch.

        Pass a prebuilt :class:`QuerySpec`, or its fields as keyword
        arguments (``engine.query(Q, method="expected_nn")``).  Returns
        a structured :class:`QueryResult`; repeated identical batches
        (same spec, same query bytes, same generation) are served from
        the session's result cache.
        """
        if spec is None:
            spec = QuerySpec(**spec_kwargs)
        elif spec_kwargs:
            mask_len = getattr(spec, "_subset_mask_len", None)
            spec = dataclasses.replace(spec, **spec_kwargs)
            if "subset" not in spec_kwargs and mask_len is not None:
                # replace() re-ran __post_init__ on the already-converted
                # index tuple; restore the original mask length so the
                # wrong-dataset guard keeps working.
                object.__setattr__(spec, "_subset_mask_len", mask_len)
        # Validate dataset-dependent spec fields before the cache is
        # consulted, so an invalid spec raises regardless of cache state.
        self._check_subset(spec)
        Q = as_query_array(qs)
        t0 = time.perf_counter()
        key = self._result_key(spec, Q)
        if key is not None:
            hit = self._result_cache.get(key)
            if hit is not None:
                self._result_cache.move_to_end(key)
                self._result_hits += 1
                return hit._replica(elapsed=time.perf_counter() - t0)
            self._result_misses += 1
        with _faults.collecting(self._fault_stats):
            result = self._execute(spec, Q)
        result.elapsed = time.perf_counter() - t0
        if key is not None and self._result_cache_size > 0:
            self._result_cache[key] = result._replica(result.elapsed)
            self._result_cache[key].cached = False
            while len(self._result_cache) > self._result_cache_size:
                self._result_cache.popitem(last=False)
        return result

    def _result_key(self, spec: QuerySpec, Q: np.ndarray) -> Optional[tuple]:
        if self._result_cache_size <= 0:
            return None
        spec_key = spec.cache_key()
        if spec_key is None:
            return None
        digest = hashlib.sha1(
            np.ascontiguousarray(Q).tobytes()
        ).hexdigest()
        return spec_key + (self._generation, Q.shape[0], digest)

    # -- execution -----------------------------------------------------------
    def _execute(self, spec: QuerySpec, Q: np.ndarray) -> QueryResult:
        if spec.subset is not None:
            return self._execute_subset(spec, Q)
        m = Q.shape[0]
        n = len(self._points)
        base = dict(
            spec=spec, m=m, n=n, generation=self._generation
        )
        if n == 0:
            approx = spec.tier == "approx"
            expected = spec.method == "expected_nn"
            return QueryResult(
                answers=self._empty_answers(spec, m),
                fallback=np.zeros(m, dtype=bool) if approx else None,
                values=np.full(m, np.inf) if expected else None,
                # Nothing to approximate: the (empty) answer is exact,
                # and the certificate keeps the non-empty array contract.
                certificate=(
                    np.zeros(m) if approx and expected else None
                ),
                plan={"route": "empty", "indexes": []},
                **base,
            )
        overrides = {}
        if spec.tile_bytes is not None:
            overrides["tile_bytes"] = spec.tile_bytes
        if spec.parallel_backend is not None:
            overrides["parallel_backend"] = spec.parallel_backend
        if spec.parallel_workers is not None:
            overrides["parallel_workers"] = spec.parallel_workers
        if overrides:
            with _execution_ctx(**overrides):
                result = self._dispatch_resilient(spec, Q, base)
        else:
            result = self._dispatch_resilient(spec, Q, base)
        if spec.diagnostics:
            self._collect_diagnostics(spec, Q, result)
        return result

    # -- deadlines & degradation ----------------------------------------------
    def _dispatch_resilient(
        self, spec: QuerySpec, Q: np.ndarray, base: Dict
    ) -> QueryResult:
        """Dispatch under the spec's deadline policy (plain dispatch
        when no deadline is set)."""
        if spec.deadline_s is None:
            return self._dispatch(spec, Q, base)
        if spec.on_deadline == "raise":
            with _deadline.deadline_scope(spec.deadline_s):
                return self._dispatch(spec, Q, base)
        return self._dispatch_degrade(spec, Q, base)

    def _degrade_eps(self, spec: QuerySpec) -> float:
        if spec.degrade_eps is not None:
            return float(spec.degrade_eps)
        if spec.tier == "approx" and spec.eps is not None:
            return 10.0 * float(spec.eps)
        b = self.columns().bboxes
        diag = float(
            np.hypot(
                b[:, 2].max() - b[:, 0].min(), b[:, 3].max() - b[:, 1].min()
            )
        )
        return max(0.01 * diag, 1e-9)

    def _dispatch_degrade(
        self, spec: QuerySpec, Q: np.ndarray, base: Dict
    ) -> QueryResult:
        """Run the batch in row chunks under the deadline; rows that do
        not finish in time re-plan on the approx tier (outside the
        deadline), and the result's ``degraded`` mask marks them."""
        m = Q.shape[0]
        plain = dataclasses.replace(
            spec, deadline_s=None, on_deadline="raise", degrade_eps=None
        )
        if m == 0:
            return self._dispatch(plain, Q, base)
        chunk = self.planner()._tile_rows(
            "exact" if spec.tier == "exact" else "pruned"
        )
        if _EXECUTION.parallel_backend == "process":
            # A degrade chunk must span several process-pool tiles, or
            # the exact tier's fan-out degenerates to one tile per
            # chunk and the pool (with its crash recovery) never
            # engages.
            chunk *= 4
        parts: List[QueryResult] = []
        done = 0
        with _deadline.deadline_scope(spec.deadline_s):
            try:
                for ci, lo in enumerate(range(0, m, chunk)):
                    _faults.fire("engine.chunk", ci)
                    _deadline.check_deadline("engine.chunk")
                    hi = min(lo + chunk, m)
                    parts.append(
                        self._dispatch(plain, Q[lo:hi], dict(base, m=hi - lo))
                    )
                    done = hi
            except QueryTimeoutError:
                # The chunk in flight is discarded; its rows (and all
                # later ones) degrade below.
                pass
        degraded = np.zeros(m, dtype=bool)
        if done < m:
            degraded[done:] = True
            eps = self._degrade_eps(spec)
            aspec = QuerySpec(
                spec.method, tier="approx", eps=eps, tau=spec.tau
            )
            # The approx tail runs on planner tiles, which are
            # thread-only; a process-backend main tier must not make
            # degradation itself fail.
            tail_ctx = (
                _execution_ctx(parallel_backend="thread")
                if _EXECUTION.parallel_backend == "process"
                else contextlib.nullcontext()
            )
            with tail_ctx:
                parts.append(
                    self._dispatch(aspec, Q[done:], dict(base, m=m - done))
                )
        result = self._merge_chunks(spec, parts, base)
        result.degraded = degraded
        if done < m:
            result.plan["route"] = (
                f"{spec.method}/{spec.tier}+degraded[{m - done}]"
            )
            result.plan["degraded_rows"] = int(m - done)
            result.plan["degrade_eps"] = float(eps)
        return result

    @staticmethod
    def _merge_chunks(
        spec: QuerySpec, parts: List[QueryResult], base: Dict
    ) -> QueryResult:
        """Row-concatenate chunked :class:`QueryResult` payloads (every
        degradable method is row-independent, so chunking is exact)."""
        first = parts[0].answers
        if isinstance(first, np.ndarray):
            answers = (
                parts[0].answers
                if len(parts) == 1
                else np.concatenate([p.answers for p in parts])
            )
        else:
            answers = [row for p in parts for row in p.answers]

        def cat(field: str, fill_dtype) -> Optional[np.ndarray]:
            if all(getattr(p, field) is None for p in parts):
                return None
            return np.concatenate([
                getattr(p, field)
                if getattr(p, field) is not None
                else np.zeros(p.m, dtype=fill_dtype)
                for p in parts
            ])

        indexes: List[str] = []
        for p in parts:
            for name in p.plan.get("indexes", []):
                if name not in indexes:
                    indexes.append(name)
        return QueryResult(
            answers=answers,
            values=cat("values", np.float64),
            fallback=cat("fallback", bool),
            certificate=cat("certificate", np.float64),
            plan={"route": f"{spec.method}/{spec.tier}", "indexes": indexes},
            **base,
        )

    def _exact_process_many(self, method: str, Q: np.ndarray):
        """The exact tier fanned out over a process pool.

        The planner's tile closures hold model objects and reject the
        process backend outright; the exact tier's row tiles are
        self-contained, so they ship to workers via
        :func:`_exact_tile_worker` and reassemble in tile order —
        answers are bit-identical to the in-process exact path, and
        failed tiles recover through ``map_tiles``'s serial retry.
        """
        blob = _io.dumps(self._points)
        n = len(self._points)
        rows = max(1, int(_EXECUTION.tile_bytes) // max(1, 64 * n))
        rows = _admission.clamp_tile_rows(
            rows, n, 64, what=f"{method}/exact process tiles"
        )
        tiles = _parallel.tile_ranges(Q.shape[0], rows)
        fn = functools.partial(_exact_tile_worker, blob, method, Q)
        parts = _parallel.map_tiles(fn, tiles, backend="process")
        if method == "expected_nn":
            return (
                np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
            )
        return [row for p in parts for row in p]

    def _dispatch(
        self, spec: QuerySpec, Q: np.ndarray, base: Dict
    ) -> QueryResult:
        method, tier = spec.method, spec.tier
        route = f"{method}/{tier}"
        if method == "expected_nn":
            if tier == "approx":
                winners, values, fallback = self.planner().expected_nn_many(
                    Q,
                    tier="approx",
                    eps=spec.eps,
                    rel=spec.rel,
                    return_fallback=True,
                )
                certificate = np.maximum(spec.eps, spec.rel * values)
                # Fallback rows resolve exactly in float64; under
                # EXECUTION.dtype="float32" the planner reports their
                # certified kernel error bounds instead, which fold
                # into this tier's eps budget.
                f32_bounds = self.planner().last_fallback_bounds
                certificate[fallback] = (
                    0.0 if f32_bounds is None else f32_bounds
                )
                return QueryResult(
                    answers=winners,
                    values=values,
                    fallback=fallback,
                    certificate=certificate,
                    plan={"route": route, "indexes": ["quant", "planner"]},
                    **base,
                )
            if tier == "exact":
                if _EXECUTION.parallel_backend == "process":
                    winners, values = self._exact_process_many(method, Q)
                else:
                    winners, values = self.expected_index().query_many(
                        Q, exact=True
                    )
            else:
                winners, values = self.planner().expected_nn_many(Q)
            return QueryResult(
                answers=winners,
                values=values,
                plan={
                    "route": route,
                    "indexes": ["expected_nn" if tier == "exact" else "planner"],
                },
                **base,
            )
        if method == "nonzero":
            if tier == "approx":
                sets, fallback = self.planner().nonzero_nn_many(
                    Q,
                    tier="approx",
                    eps=spec.eps,
                    rel=spec.rel,
                    return_fallback=True,
                )
                return QueryResult(
                    answers=sets,
                    fallback=fallback,
                    plan={"route": route, "indexes": ["quant", "planner"]},
                    **base,
                )
            if tier == "exact":
                if _EXECUTION.parallel_backend == "process":
                    sets = self._exact_process_many(method, Q)
                else:
                    sets = self.uset().nonzero_nn_many(Q)
            else:
                sets = self.planner().nonzero_nn_many(Q)
            return QueryResult(
                answers=sets,
                plan={
                    "route": route,
                    "indexes": ["uset" if tier == "exact" else "planner"],
                },
                **base,
            )
        if method == "threshold":
            if tier == "approx":
                answers, fallback = self.planner().threshold_nn_exact_many(
                    Q,
                    spec.tau,
                    tier="approx",
                    eps=spec.eps,
                    rel=spec.rel,
                    return_fallback=True,
                )
                return QueryResult(
                    answers=answers,
                    fallback=fallback,
                    plan={"route": route, "indexes": ["quant", "planner"]},
                    **base,
                )
            planner = None if tier == "exact" else self.planner()
            answers = _threshold_nn_exact_many(
                self._points, Q, spec.tau, planner=planner
            )
            return QueryResult(
                answers=answers,
                plan={
                    "route": route,
                    "indexes": [] if tier == "exact" else ["planner"],
                },
                **base,
            )
        if method == "expected_knn":
            planner = None if tier == "exact" else self.planner()
            ranking = _expected_knn_many(
                self._points, Q, spec.k, planner=planner
            )
            return QueryResult(
                answers=ranking,
                plan={
                    "route": route,
                    "indexes": [] if tier == "exact" else ["planner"],
                },
                **base,
            )
        # mc_pnn
        mc = self.monte_carlo_index(
            s=spec.s, epsilon=spec.epsilon, delta=spec.delta, seed=spec.seed
        )
        planner = None if tier == "exact" else self.planner()
        answers = mc.query_many(
            Q,
            planner=planner,
            adaptive=spec.adaptive,
            tol=spec.tol,
            delta=spec.delta,
        )
        return QueryResult(
            answers=answers,
            plan={
                "route": route,
                "indexes": ["mc_pnn"]
                + ([] if tier == "exact" else ["planner"]),
            },
            **base,
        )

    def _check_subset(self, spec: QuerySpec) -> None:
        """Reject subsets that do not fit this dataset (mask built for a
        different ``n``, out-of-range indices)."""
        if spec.subset is None:
            return
        n = len(self._points)
        mask_len = getattr(spec, "_subset_mask_len", None)
        if mask_len is not None and mask_len != n:
            raise QueryError(
                f"boolean subset mask must have length {n}, got {mask_len}"
            )
        if spec.subset and spec.subset[-1] >= n:
            raise QueryError(f"subset indices must lie in [0, {n})")

    def _execute_subset(self, spec: QuerySpec, Q: np.ndarray) -> QueryResult:
        self._check_subset(spec)
        idx = np.asarray(spec.subset, dtype=np.intp)
        n = len(self._points)
        key = ("subset", spec.subset)
        child = self._registry.get(
            key,
            self._generation,
            lambda: Engine(
                [self._points[i] for i in idx], result_cache_size=0
            ),
        )
        self._touch(key)
        result = child._execute(dataclasses.replace(spec, subset=None), Q)
        result.spec = spec
        result.n = n
        result.generation = self._generation
        result.answers = self._remap_subset(spec.method, result.answers, idx)
        result.plan["route"] = f"subset[{idx.size}]/" + str(
            result.plan.get("route", "")
        )
        return result

    @staticmethod
    def _remap_subset(method: str, answers, idx: np.ndarray):
        """Lift sub-dataset answer indices back to the parent space."""
        if method in ("expected_nn",):
            out = np.asarray(answers).copy()
            won = out >= 0
            out[won] = idx[out[won]]
            return out
        if method == "expected_knn":
            return idx[np.asarray(answers)]
        if method == "nonzero":
            return [frozenset(int(idx[i]) for i in s) for s in answers]
        return [
            {int(idx[i]): v for i, v in row.items()} for row in answers
        ]

    def _collect_diagnostics(
        self, spec: QuerySpec, Q: np.ndarray, result: QueryResult
    ) -> None:
        diag: Dict[str, float] = {}
        if result.fallback is not None:
            diag["fallback_rows"] = float(np.count_nonzero(result.fallback))
        # Evaluation-phase breakdown of the answer pass that just ran
        # (captured before prune_stats below re-runs the prune pass):
        # prune vs evaluate wall time, grouped pairs, and eval-cache
        # reuse.  Present whenever the grouped evaluator served the
        # query.
        if len(self._points) and spec.subset is None:
            planner = self._registry.peek(("planner",), self._generation)
            if planner is not None and planner.last_eval_stats is not None:
                diag["eval_pairs"] = planner.last_eval_stats["pairs"]
                diag["eval_seconds"] = planner.last_eval_stats["eval_seconds"]
                diag["prune_seconds"] = planner.last_eval_stats["prune_seconds"]
            cache = self._registry.peek(("eval_cache",), self._generation)
            if cache is not None:
                diag["eval_cache_hits"] = float(cache.hits)
                for name, pairs in cache.pair_counts.items():
                    diag[f"pairs_{name}"] = float(pairs)
        if spec.tier == "pruned" and len(self._points) and spec.subset is None:
            criterion = (
                "expected"
                if spec.method in ("expected_nn", "expected_knn")
                else "support"
            )
            # Match the answer path's prune parameters (notably
            # expected_knn's k), so the reported counts describe the
            # same survivor sets the evaluators saw.
            k = spec.k if spec.method == "expected_knn" else 1
            stats = self.planner().prune_stats(Q, criterion=criterion, k=k)
            diag["mean_candidates"] = stats["mean_candidates"]
            diag["max_candidates"] = stats["max_candidates"]
            diag["mean_candidate_fraction"] = stats["mean_fraction"]
            diag["candidates_pruned_fraction"] = 1.0 - stats["mean_fraction"]
            # Dual-tree traversal telemetry (present when the planner's
            # candidate generator is the dual tree).
            for key in (
                "node_pairs_visited",
                "node_pairs_pruned",
                "point_node_pairs",
                "refined_pairs",
                "survivors",
            ):
                if key in stats:
                    diag[key] = stats[key]
        result.diagnostics.update(diag)

    @staticmethod
    def _empty_answers(spec: QuerySpec, m: int):
        """Well-shaped answers over an empty dataset (nothing can be a
        neighbor): no winners, empty sets, empty rankings."""
        if spec.method == "expected_nn":
            return np.full(m, -1, dtype=np.intp)
        if spec.method == "expected_knn":
            return np.zeros((m, 0), dtype=np.intp)
        if spec.method == "nonzero":
            return [frozenset()] * m
        return [{} for _ in range(m)]

    # -- facade-compatible convenience methods --------------------------------
    def nonzero_nn_many(
        self,
        qs,
        exact: bool = False,
        eps: Optional[float] = None,
        rel: float = 0.0,
    ) -> List[FrozenSet[int]]:
        """``NN!=0(q, P)`` per query row (:func:`repro.batch.nonzero_nn_many`
        against this session's cached structures)."""
        return self.query(
            qs, QuerySpec("nonzero", tier=tier_of(exact, eps), eps=eps, rel=rel)
        ).answers

    def expected_nn_many(
        self,
        qs,
        exact: bool = False,
        eps: Optional[float] = None,
        rel: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Expected-distance winners ``(indices, values)`` per query row."""
        res = self.query(
            qs,
            QuerySpec(
                "expected_nn", tier=tier_of(exact, eps), eps=eps, rel=rel
            ),
        )
        return res.answers, res.values

    def expected_knn_many(self, qs, k: int, exact: bool = False) -> np.ndarray:
        """Expected-distance kNN ranking, an ``(m, k)`` index matrix."""
        return self.query(
            qs,
            QuerySpec(
                "expected_knn", tier="exact" if exact else "pruned", k=k
            ),
        ).answers

    def threshold_nn_exact_many(
        self,
        qs,
        tau: float,
        exact: bool = False,
        eps: Optional[float] = None,
        rel: float = 0.0,
    ) -> List[Dict[int, float]]:
        """Exact threshold answers ``{i: pi_i(q) > tau}`` per query row."""
        return self.query(
            qs,
            QuerySpec(
                "threshold",
                tier=tier_of(exact, eps),
                tau=tau,
                eps=eps,
                rel=rel,
            ),
        ).answers

    def monte_carlo_pnn_many(
        self,
        qs,
        s: Optional[int] = None,
        epsilon: Optional[float] = None,
        delta: float = 0.05,
        rng: SeedLike = 0,
        exact: bool = False,
        adaptive: bool = False,
        tol: Optional[float] = None,
    ) -> List[Dict[int, float]]:
        """Theorem 4.3/4.5 estimates ``{i: pihat_i(q)}`` per query row,
        over the session's shared ``(s, seed)`` sample block."""
        return self.query(
            qs,
            QuerySpec(
                "mc_pnn",
                tier="exact" if exact else "pruned",
                s=s,
                epsilon=epsilon,
                delta=delta,
                seed=rng,
                adaptive=adaptive,
                tol=tol,
            ),
        ).answers

    def monte_carlo_knn_many(
        self, qs, k: int, s: int = 2000, rng: SeedLike = 0
    ) -> List[Dict[int, float]]:
        """Monte-Carlo ``pi^(k)`` estimates per query row, reusing the
        session's ``(s, seed)`` sample block."""
        if not self._points:
            return [{} for _ in range(as_query_array(qs).shape[0])]
        return _monte_carlo_knn_many(
            self._points,
            qs,
            k,
            s=s,
            rng=rng,
            samples=self.sample_block(s, rng)
            if _seed_key(rng) is not None
            else None,
            uset=self.uset(),
        )

    def approx_threshold_many(
        self, qs, tau: float, eps: float
    ) -> List[ThresholdAnswer]:
        """Spiral-search threshold classification per query row."""
        if not self._points:
            return [
                ThresholdAnswer(above={}, undecided={})
                for _ in range(as_query_array(qs).shape[0])
            ]
        return self.spiral_threshold_index().query_many(qs, tau, eps)

    # -- matrix / instantiation helpers ---------------------------------------
    def dmin_matrix(self, qs) -> np.ndarray:
        """``delta_i(q)`` for every query/point pair, shape ``(m, n)``."""
        Q = as_query_array(qs)
        if not self._points:
            return np.zeros((Q.shape[0], 0))
        return self.uset().dmin_matrix(Q)

    def dmax_matrix(self, qs) -> np.ndarray:
        """``Delta_i(q)`` for every query/point pair, shape ``(m, n)``."""
        Q = as_query_array(qs)
        if not self._points:
            return np.zeros((Q.shape[0], 0))
        return self.uset().dmax_matrix(Q)

    def envelope_many(self, qs) -> Tuple[np.ndarray, np.ndarray]:
        """Batched lower envelope ``Delta(q)``: ``(argmins, values)``."""
        Q = as_query_array(qs)
        if not self._points:
            return (
                np.full(Q.shape[0], -1, dtype=np.intp),
                np.full(Q.shape[0], np.inf),
            )
        return self.uset().envelope_many(Q)

    def expected_distance_matrix(self, qs) -> np.ndarray:
        """``E[d(q, P_i)]`` for every query/point pair, shape ``(m, n)``."""
        Q = as_query_array(qs)
        if not self._points:
            return np.zeros((Q.shape[0], 0))
        return self.expected_index().expected_distance_matrix(Q)

    def instantiate_many(self, rng: SeedLike, s: int) -> np.ndarray:
        """``s`` instantiations of the whole set, shape ``(s, n, 2)`` —
        a writable copy of the session's cached block for int seeds."""
        if not self._points:
            return np.zeros((int(s), 0, 2))
        if _seed_key(rng) is None:
            return self.uset().instantiate_many(default_rng(rng), int(s))
        return self.sample_block(int(s), rng).copy()

    # -- telemetry -----------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Approximate footprint of this session's live cached
        structures (lets cached sub-engines count toward their parent's
        accounting)."""
        return self._registry.memory_bytes(
            self._generation, exclude=("mc_pnn",)
        )

    def model_histogram(self) -> Dict[str, int]:
        """``{model-type name: count}`` over the current dataset (from
        the column store when built, isinstance dispatch otherwise)."""
        cols = self._registry.peek(("columns",), self._generation)
        if cols is not None:
            return cols.tag_histogram()
        counts = Counter(model_tag(p) for p in self._points)
        return {
            TAG_NAMES[t]: c for t, c in sorted(counts.items())
        }

    def stats(self) -> Dict[str, object]:
        """Session telemetry: dataset size, model histogram, built index
        keys, generation counter, registry instrumentation, and the
        approximate memory footprint of cached columns/indexes."""
        live = self._registry.keys(self._generation)
        out = {
            "n": len(self._points),
            "generation": self._generation,
            "models": self.model_histogram(),
            "built_indexes": [_key_label(k) for k in live],
            "registry_builds": self._registry.builds,
            "registry_hits": self._registry.hits,
            "memory_bytes": self._registry.memory_bytes(
                self._generation, exclude=("mc_pnn",)
            ),
            "result_cache_entries": len(self._result_cache),
            "result_cache_hits": self._result_hits,
            "result_cache_misses": self._result_misses,
            # This engine's fault/recovery counters (injected faults,
            # worker crashes recovered, tiles retried serially) — scoped
            # per engine; repro.resilience.faults.fault_stats() keeps
            # the process-wide aggregate.
            "faults": self._fault_stats.as_dict(),
        }
        planner = self._registry.peek(("planner",), self._generation)
        if planner is not None and planner.dual_totals["traversals"]:
            # Cumulative dual-tree telemetry over this planner's prune
            # passes: node pairs bounded/pruned, leaf-stage bound
            # evaluations, and emitted survivors.
            out["dual_tree"] = dict(planner.dual_totals)
        if planner is not None and planner.eval_totals["grouped_calls"]:
            # Evaluation-phase telemetry: grouped kernel passes, pairs
            # they evaluated, prune/evaluate wall-time split, plus the
            # EvalCache's reuse counters and per-model-tag pair
            # histogram.
            ev: Dict[str, object] = dict(planner.eval_totals)
            cache = self._registry.peek(("eval_cache",), self._generation)
            if cache is not None:
                ev["cache_hits"] = cache.hits
                ev["cache_builds"] = cache.builds
                ev["pairs_by_tag"] = dict(cache.pair_counts)
            out["evaluators"] = ev
        if self._wal is not None:
            # Durable-session telemetry: log depth, fsync latency, and
            # how many records the last recovery replayed.
            out["wal"] = {
                **self._wal.stats(),
                "replayed": self._wal_replayed,
                "directory": self._wal_dir,
            }
        # Telemetry is an operational surface (logged, scraped, shipped
        # over HTTP by repro.service): normalise any NumPy scalars the
        # counters picked up so json.dumps always succeeds on it.
        return _io.json_safe(out)

    def __repr__(self) -> str:
        stats = self.stats()
        models = ", ".join(
            f"{name}: {count}" for name, count in stats["models"].items()
        )
        mib = stats["memory_bytes"] / float(1 << 20)
        return (
            f"Engine(n={stats['n']}, generation={stats['generation']}, "
            f"models={{{models}}}, "
            f"indexes={len(stats['built_indexes'])}, "
            f"~{mib:.2f} MiB cached)"
        )
